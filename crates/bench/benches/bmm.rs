//! Criterion bench: BMM (bit SpGEMM) vs the float Gustavson SpGEMM baseline
//! (the counterpart of Figures 6d / 7d).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bitgblas_core::b2sr::convert::from_csr;
use bitgblas_core::kernels::{bmm_bin_bin_sum, bmm_bin_bin_sum_masked};
use bitgblas_datagen::generators;
use bitgblas_sparse::{ops, Csr};

fn bench_matrices() -> Vec<(&'static str, Csr)> {
    vec![
        (
            "blocks_1k",
            generators::block_community(16, 64, 0.35, 1e-5, 1),
        ),
        ("banded_2k", generators::banded(2048, 4, 0.7, 2)),
        ("mycielskian10", generators::mycielskian(10)),
    ]
}

fn bmm_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for (name, csr) in bench_matrices() {
        // Baseline: float SpGEMM followed by a reduction (cuSPARSE csrgemm + sum).
        group.bench_with_input(
            BenchmarkId::new("csr_spgemm_baseline", name),
            &csr,
            |b, csr| {
                b.iter(|| ops::reduce_sum(&ops::spgemm_parallel(csr, csr).unwrap()));
            },
        );

        let b8 = from_csr::<u8>(&csr, 8);
        group.bench_function(BenchmarkId::new("bmm_bin_bin_sum/B2SR-8", name), |b| {
            b.iter(|| bmm_bin_bin_sum(&b8, &b8));
        });
        let b32 = from_csr::<u32>(&csr, 32);
        group.bench_function(BenchmarkId::new("bmm_bin_bin_sum/B2SR-32", name), |b| {
            b.iter(|| bmm_bin_bin_sum(&b32, &b32));
        });

        // The Triangle-Counting shape: L * L^T masked by L.
        let l = csr.symmetrized().without_diagonal().lower_triangle();
        let lt = l.transpose();
        let (lb, ltb, mb) = (
            from_csr::<u32>(&l, 32),
            from_csr::<u32>(&lt, 32),
            from_csr::<u32>(&l, 32),
        );
        group.bench_function(
            BenchmarkId::new("bmm_bin_bin_sum_masked/tc_shape", name),
            |b| {
                b.iter(|| bmm_bin_bin_sum_masked(&lb, &ltb, &mb));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("csr_spgemm_masked_baseline/tc_shape", name),
            &l,
            |b, l| {
                b.iter(|| ops::spgemm_masked_sum(l, l, l).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bmm_benches);
criterion_main!(benches);
