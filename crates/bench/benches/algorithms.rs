//! Criterion bench: end-to-end graph algorithms on the bit backend vs the
//! float-CSR baseline (the counterpart of Tables VII/VIII/IX).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bitgblas_algorithms::{
    bfs, connected_components, pagerank, sssp, triangle_count, PageRankConfig,
};
use bitgblas_core::{Backend, Matrix, TileSize};
use bitgblas_datagen::generators;
use bitgblas_sparse::Csr;

fn bench_graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("grid_48x48", generators::grid2d(48, 48)),
        ("banded_2k", generators::banded(2048, 3, 0.7, 5)),
        ("rmat_10", generators::rmat(10, 8, 0.57, 0.19, 0.19, 6)),
    ]
}

fn backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("b2sr8", Backend::Bit(TileSize::S8)),
        ("float_csr", Backend::FloatCsr),
    ]
}

fn algorithm_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for (gname, adj) in bench_graphs() {
        for (bname, backend) in backends() {
            let m = Matrix::from_csr(&adj, backend);
            group.bench_function(BenchmarkId::new(format!("bfs/{bname}"), gname), |b| {
                b.iter(|| bfs(&m, 0));
            });
            group.bench_function(BenchmarkId::new(format!("sssp/{bname}"), gname), |b| {
                b.iter(|| sssp(&m, 0));
            });
            group.bench_function(BenchmarkId::new(format!("pagerank/{bname}"), gname), |b| {
                b.iter(|| pagerank(&m, &PageRankConfig::default()));
            });
            group.bench_function(BenchmarkId::new(format!("cc/{bname}"), gname), |b| {
                b.iter(|| connected_components(&m));
            });
            group.bench_function(BenchmarkId::new(format!("tc/{bname}"), gname), |b| {
                b.iter(|| triangle_count(&m));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, algorithm_benches);
criterion_main!(benches);
