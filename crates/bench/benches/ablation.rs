//! Criterion bench: ablations of the design choices called out in DESIGN.md.
//!
//! 1. **Tile size** — the same BMV across all four B2SR variants (which tile
//!    size wins depends on the matrix pattern, Figure 3/5).
//! 2. **Binarized vs full-precision multiplier vector** — `bmv_bin_bin_full`
//!    vs `bmv_bin_full_full` on the same matrix (Figure 6b vs 6c).
//! 3. **Mask fused in the kernel vs applied afterwards** — the BFS masking
//!    choice of §V.
//! 4. **Column-major vs row-major tile packing** of a dense tile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bitgblas_bitops::pack::{pack_tile_colmajor, pack_tile_rowmajor};
use bitgblas_core::b2sr::convert::from_csr;
use bitgblas_core::kernels::{
    bmv_bin_bin_bin, bmv_bin_bin_bin_masked, bmv_bin_bin_full, bmv_bin_full_full, pack_vector_bits,
    pack_vector_tilewise,
};
use bitgblas_core::Semiring;
use bitgblas_datagen::generators;

fn ablation_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    let csr = generators::banded(4096, 3, 0.7, 11);
    let n = csr.ncols();
    let x: Vec<f32> = (0..n).map(|i| ((i % 4) + 1) as f32).collect();

    // 1. Tile-size sweep for the same scheme.
    let b4 = from_csr::<u8>(&csr, 4);
    let b8 = from_csr::<u8>(&csr, 8);
    let b16 = from_csr::<u16>(&csr, 16);
    let b32 = from_csr::<u32>(&csr, 32);
    group.bench_function(BenchmarkId::new("tile_size/bmv_full", "B2SR-4"), |b| {
        b.iter(|| bmv_bin_full_full(&b4, &x, Semiring::Arithmetic));
    });
    group.bench_function(BenchmarkId::new("tile_size/bmv_full", "B2SR-8"), |b| {
        b.iter(|| bmv_bin_full_full(&b8, &x, Semiring::Arithmetic));
    });
    group.bench_function(BenchmarkId::new("tile_size/bmv_full", "B2SR-16"), |b| {
        b.iter(|| bmv_bin_full_full(&b16, &x, Semiring::Arithmetic));
    });
    group.bench_function(BenchmarkId::new("tile_size/bmv_full", "B2SR-32"), |b| {
        b.iter(|| bmv_bin_full_full(&b32, &x, Semiring::Arithmetic));
    });

    // 2. Binarized vs full-precision multiplier vector.
    let x8 = pack_vector_tilewise::<u8>(&x, 8);
    group.bench_function("vector_precision/binarized_bmv_bin_bin_full", |b| {
        b.iter(|| bmv_bin_bin_full(&b8, &x8));
    });
    group.bench_function("vector_precision/full_bmv_bin_full_full", |b| {
        b.iter(|| bmv_bin_full_full(&b8, &x, Semiring::Arithmetic));
    });

    // 3. Mask fused in the kernel vs applied after the kernel.
    let visited: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let mask8 = pack_vector_bits::<u8>(&visited, 8);
    group.bench_function("masking/fused_in_kernel", |b| {
        b.iter(|| bmv_bin_bin_bin_masked(&b8, &x8, &mask8));
    });
    group.bench_function("masking/post_filter", |b| {
        b.iter(|| {
            let mut y = bmv_bin_bin_bin(&b8, &x8);
            for (w, m) in y.iter_mut().zip(&mask8) {
                *w &= !m;
            }
            y
        });
    });

    // 4. Column-major vs row-major packing of a dense 32x32 tile.
    let tile: Vec<f32> = (0..32 * 32)
        .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
        .collect();
    group.bench_function("packing/row_major", |b| {
        b.iter(|| pack_tile_rowmajor::<u32>(&tile, 32));
    });
    group.bench_function("packing/col_major", |b| {
        b.iter(|| pack_tile_colmajor::<u32>(&tile, 32));
    });

    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
