//! Criterion bench: BMV kernel schemes vs the float CSR SpMV baseline
//! (the statistically-sound counterpart of Figures 6a–c / 7a–c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bitgblas_core::b2sr::convert::from_csr;
use bitgblas_core::kernels::{
    bmv_bin_bin_bin, bmv_bin_bin_full, bmv_bin_full_full, pack_vector_tilewise,
};
use bitgblas_core::Semiring;
use bitgblas_datagen::generators;
use bitgblas_sparse::{ops, Csr, DenseVec};

fn bench_matrices() -> Vec<(&'static str, Csr)> {
    vec![
        ("banded_4k", generators::banded(4096, 3, 0.7, 1)),
        (
            "blocks_2k",
            generators::block_community(32, 64, 0.3, 1e-5, 2),
        ),
        ("scatter_4k", generators::erdos_renyi(4096, 0.002, true, 3)),
    ]
}

fn bmv_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmv");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for (name, csr) in bench_matrices() {
        let n = csr.ncols();
        let x: Vec<f32> = (0..n).map(|i| ((i % 5) + 1) as f32).collect();
        let x_dense = DenseVec::from_vec(x.clone());

        // Baseline: float CSR SpMV (cuSPARSE stand-in).
        group.bench_with_input(
            BenchmarkId::new("csr_spmv_baseline", name),
            &csr,
            |b, csr| {
                b.iter(|| ops::spmv_parallel(csr, &x_dense).unwrap());
            },
        );

        // B2SR-8 and B2SR-32 variants of the three BMV schemes.
        let b8 = from_csr::<u8>(&csr, 8);
        let x8 = pack_vector_tilewise::<u8>(&x, 8);
        let b32 = from_csr::<u32>(&csr, 32);
        let x32 = pack_vector_tilewise::<u32>(&x, 32);

        group.bench_function(BenchmarkId::new("bmv_bin_bin_bin/B2SR-8", name), |b| {
            b.iter(|| bmv_bin_bin_bin(&b8, &x8));
        });
        group.bench_function(BenchmarkId::new("bmv_bin_bin_bin/B2SR-32", name), |b| {
            b.iter(|| bmv_bin_bin_bin(&b32, &x32));
        });
        group.bench_function(BenchmarkId::new("bmv_bin_bin_full/B2SR-8", name), |b| {
            b.iter(|| bmv_bin_bin_full(&b8, &x8));
        });
        group.bench_function(BenchmarkId::new("bmv_bin_full_full/B2SR-8", name), |b| {
            b.iter(|| bmv_bin_full_full(&b8, &x, Semiring::Arithmetic));
        });
        group.bench_function(BenchmarkId::new("bmv_bin_full_full/B2SR-32", name), |b| {
            b.iter(|| bmv_bin_full_full(&b32, &x, Semiring::Arithmetic));
        });
    }
    group.finish();
}

criterion_group!(benches, bmv_benches);
criterion_main!(benches);
