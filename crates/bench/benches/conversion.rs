//! Criterion bench: CSR → B2SR conversion cost for the four tile sizes
//! (§III-B, the 3–34 ms bit-packing overhead the paper amortizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bitgblas_core::b2sr::convert::from_csr;
use bitgblas_datagen::generators;
use bitgblas_sparse::{Bsr, Csr};

fn bench_matrices() -> Vec<(&'static str, Csr)> {
    vec![
        ("banded_8k", generators::banded(8192, 3, 0.7, 1)),
        (
            "delaunay_like_16k",
            generators::stripes(16384, &[1, 2, 127, 128], 0.75, 2),
        ),
        (
            "blocks_4k",
            generators::block_community(64, 64, 0.3, 1e-5, 3),
        ),
    ]
}

fn conversion_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversion");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for (name, csr) in bench_matrices() {
        group.bench_with_input(BenchmarkId::new("csr_to_b2sr4", name), &csr, |b, csr| {
            b.iter(|| from_csr::<u8>(csr, 4));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_b2sr8", name), &csr, |b, csr| {
            b.iter(|| from_csr::<u8>(csr, 8));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_b2sr16", name), &csr, |b, csr| {
            b.iter(|| from_csr::<u16>(csr, 16));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_b2sr32", name), &csr, |b, csr| {
            b.iter(|| from_csr::<u32>(csr, 32));
        });
        // The float BSR conversion (the cusparseScsr2bsr analogue) for comparison.
        group.bench_with_input(
            BenchmarkId::new("csr_to_float_bsr8", name),
            &csr,
            |b, csr| {
                b.iter(|| Bsr::from_csr(csr, 8));
            },
        );
        // Transpose cost of the already-converted matrix (the "simpler
        // transpose" merit claimed for the format).
        let b8 = from_csr::<u8>(&csr, 8);
        group.bench_function(BenchmarkId::new("b2sr8_transpose", name), |b| {
            b.iter(|| b8.transpose());
        });
    }
    group.finish();
}

criterion_group!(benches, conversion_benches);
criterion_main!(benches);
