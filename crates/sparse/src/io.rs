//! Matrix Market I/O.
//!
//! The paper evaluates on the SuiteSparse Matrix Collection, which is
//! distributed in Matrix Market (`.mtx`) format.  The collection itself is
//! not available offline, so the evaluation corpus is generated synthetically
//! by `bitgblas-datagen`; this module nevertheless implements the reader and
//! writer so that real SuiteSparse matrices can be dropped in when the files
//! are present.
//!
//! Supported features: `matrix coordinate` with `real`, `integer` or
//! `pattern` fields and `general` or `symmetric` symmetry.  This covers every
//! binary square matrix used in the paper.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;

/// Value field of a Matrix Market file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmField {
    Real,
    Integer,
    Pattern,
}

/// Symmetry of a Matrix Market file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmSymmetry {
    General,
    Symmetric,
}

/// Read a Matrix Market stream into a COO matrix.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines();

    // Header line.
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))??;
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse(format!(
            "bad MatrixMarket header: {header}"
        )));
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse(
            "only coordinate (sparse) matrices are supported".into(),
        ));
    }
    let field = match tokens[3] {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported field type: {other}"
            )))
        }
    };
    let symmetry = match tokens[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => return Err(SparseError::Parse(format!("unsupported symmetry: {other}"))),
    };

    // Size line (skipping comments / blank lines).
    let mut size_line = None;
    for line in &mut lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| SparseError::Parse(format!("bad size token: {t}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line must have 3 fields: {size_line}"
        )));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let r: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse(format!("missing row index: {trimmed}")))?
            .parse()
            .map_err(|_| SparseError::Parse(format!("bad row index: {trimmed}")))?;
        let c: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse(format!("missing column index: {trimmed}")))?
            .parse()
            .map_err(|_| SparseError::Parse(format!("bad column index: {trimmed}")))?;
        let v: f32 = match field {
            MmField::Pattern => 1.0,
            MmField::Real | MmField::Integer => parts
                .next()
                .ok_or_else(|| SparseError::Parse(format!("missing value: {trimmed}")))?
                .parse()
                .map_err(|_| SparseError::Parse(format!("bad value: {trimmed}")))?,
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse(
                "MatrixMarket indices are 1-based".into(),
            ));
        }
        coo.push(r - 1, c - 1, v)?;
        if symmetry == MmSymmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "header declares {nnz} entries but {seen} were found"
        )));
    }
    Ok(coo)
}

/// Read a Matrix Market file from disk into a COO matrix.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<Coo, SparseError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(file)
}

/// Read a Matrix Market file and return its binary CSR form (the view the
/// paper's pipeline starts from).
pub fn read_binary_csr<P: AsRef<Path>>(path: P) -> Result<Csr, SparseError> {
    Ok(read_matrix_market_file(path)?.to_binary_csr())
}

/// Write a CSR matrix as a `general real coordinate` Matrix Market stream.
pub fn write_matrix_market<W: Write>(writer: &mut W, csr: &Csr) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by bitgblas-sparse")?;
    writeln!(writer, "{} {} {}", csr.nrows(), csr.ncols(), csr.nnz())?;
    for (r, c, v) in csr.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Write a CSR matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(path: P, csr: &Csr) -> Result<(), SparseError> {
    let mut file = std::fs::File::create(path)?;
    write_matrix_market(&mut file, csr)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 1.0\n\
        1 3 2.0\n\
        2 2 3.5\n\
        3 1 -1.0\n";

    const PATTERN_SYM: &str = "%%MatrixMarket matrix coordinate pattern symmetric\n\
        4 4 3\n\
        2 1\n\
        3 2\n\
        4 4\n";

    #[test]
    fn parse_general_real() {
        let coo = read_matrix_market(GENERAL.as_bytes()).unwrap();
        assert_eq!(coo.nrows(), 3);
        assert_eq!(coo.nnz(), 4);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), Some(1.0));
        assert_eq!(csr.get(0, 2), Some(2.0));
        assert_eq!(csr.get(2, 0), Some(-1.0));
    }

    #[test]
    fn parse_pattern_symmetric_mirrors_entries() {
        let coo = read_matrix_market(PATTERN_SYM.as_bytes()).unwrap();
        let csr = coo.to_csr();
        // 2 off-diagonal entries mirrored + 1 diagonal = 5 stored entries.
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.get(1, 0), Some(1.0));
        assert_eq!(csr.get(0, 1), Some(1.0));
        assert_eq!(csr.get(3, 3), Some(1.0));
        assert!(csr.is_binary());
    }

    #[test]
    fn roundtrip_through_writer() {
        let coo = read_matrix_market(GENERAL.as_bytes()).unwrap();
        let csr = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &csr).unwrap();
        let reread = read_matrix_market(buf.as_slice()).unwrap().to_csr();
        assert_eq!(reread, csr);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2\n".as_bytes()
        )
        .is_err());
        // 0-based index is invalid
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
        // declared nnz mismatch
        let mismatch = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(mismatch.as_bytes()).is_err());
        // unsupported field
        let complex = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n";
        assert!(read_matrix_market(complex.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("bitgblas_io_test.mtx");
        let coo = read_matrix_market(GENERAL.as_bytes()).unwrap();
        let csr = coo.to_csr();
        write_matrix_market_file(&path, &csr).unwrap();
        let back = read_binary_csr(&path).unwrap();
        assert_eq!(back.nnz(), csr.nnz());
        assert!(back.is_binary());
        std::fs::remove_file(&path).ok();
    }
}
