//! Compressed Sparse Column — the transpose-view format.
//!
//! The paper uses `cusparseScsr2csc()` to transpose the upper-level indexing
//! arrays of B2SR.  This module provides the equivalent CSC structure and the
//! CSR↔CSC conversions.

use crate::csr::Csr;
use crate::error::SparseError;

/// A sparse matrix in Compressed Sparse Column format with `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    values: Vec<f32>,
}

impl Csc {
    /// Create an empty `nrows × ncols` matrix.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csc {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowind: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from raw CSC arrays with structural validation.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if colptr.len() != ncols + 1 {
            return Err(SparseError::MalformedStructure(format!(
                "colptr has length {}, expected {}",
                colptr.len(),
                ncols + 1
            )));
        }
        if rowind.len() != values.len() || *colptr.last().unwrap() != rowind.len() {
            return Err(SparseError::MalformedStructure(
                "colptr/rowind/values lengths are inconsistent".into(),
            ));
        }
        for c in 0..ncols {
            if colptr[c] > colptr[c + 1] {
                return Err(SparseError::MalformedStructure(format!(
                    "colptr is not monotone at column {c}"
                )));
            }
            let col = &rowind[colptr[c]..colptr[c + 1]];
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::MalformedStructure(format!(
                        "row indices not strictly increasing in column {c}"
                    )));
                }
            }
            if let Some(&r) = col.last() {
                if r >= nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(Csc {
            nrows,
            ncols,
            colptr,
            rowind,
            values,
        })
    }

    /// Convert a CSR matrix to CSC (the `csr2csc` transpose of the index
    /// arrays; values are permuted accordingly).
    pub fn from_csr(csr: &Csr) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let mut colptr = vec![0usize; ncols + 1];
        for &c in csr.colind() {
            colptr[c + 1] += 1;
        }
        for i in 0..ncols {
            colptr[i + 1] += colptr[i];
        }
        let mut next = colptr.clone();
        let mut rowind = vec![0usize; csr.nnz()];
        let mut values = vec![0f32; csr.nnz()];
        for (r, c, v) in csr.iter() {
            let slot = next[c];
            rowind[slot] = r;
            values[slot] = v;
            next[c] += 1;
        }
        Csc {
            nrows,
            ncols,
            colptr,
            rowind,
            values,
        }
    }

    /// Convert back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowind {
            rowptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut next = rowptr.clone();
        let mut colind = vec![0usize; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for c in 0..self.ncols {
            for i in self.colptr[c]..self.colptr[c + 1] {
                let r = self.rowind[i];
                let slot = next[r];
                colind[slot] = c;
                values[slot] = self.values[i];
                next[r] += 1;
            }
        }
        Csr::from_raw(self.nrows, self.ncols, rowptr, colind, values)
            .expect("CSC to CSR conversion produces valid structure")
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// The column-pointer array.
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// The row-index array.
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// The value array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Row indices and values of column `c`.
    pub fn col(&self, c: usize) -> (&[usize], &[f32]) {
        let range = self.colptr[c]..self.colptr[c + 1];
        (&self.rowind[range.clone()], &self.values[range])
    }

    /// In-degree of every column.
    pub fn in_degrees(&self) -> Vec<usize> {
        (0..self.ncols)
            .map(|c| self.colptr[c + 1] - self.colptr[c])
            .collect()
    }

    /// Value at `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        let (rows, vals) = self.col(c);
        rows.binary_search(&r).ok().map(|i| vals[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn small_csr() -> Csr {
        let mut coo = Coo::new(3, 4);
        for &(r, c, v) in &[
            (0, 1, 1.0),
            (0, 3, 2.0),
            (1, 0, 3.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn csr_to_csc_roundtrip() {
        let a = small_csr();
        let csc = Csc::from_csr(&a);
        assert_eq!(csc.nnz(), a.nnz());
        assert_eq!(csc.nrows(), 3);
        assert_eq!(csc.ncols(), 4);
        assert_eq!(csc.to_csr(), a);
    }

    #[test]
    fn columns_are_correct() {
        let csc = Csc::from_csr(&small_csr());
        let (rows, vals) = csc.col(1);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
        assert_eq!(csc.col(0), (&[1usize][..], &[3.0f32][..]));
        assert_eq!(csc.in_degrees(), vec![1, 2, 1, 1]);
        assert_eq!(csc.get(2, 2), Some(5.0));
        assert_eq!(csc.get(0, 0), None);
    }

    #[test]
    fn transpose_semantics_match_csr_transpose() {
        let a = small_csr();
        let via_csc = Csc::from_csr(&a);
        let t = a.transpose();
        // CSC of A stores the same data as CSR of A^T with rows/cols swapped.
        for c in 0..a.ncols() {
            let (rows, vals) = via_csc.col(c);
            let (tcols, tvals) = t.row(c);
            assert_eq!(rows, tcols);
            assert_eq!(vals, tvals);
        }
    }

    #[test]
    fn from_raw_validation() {
        assert!(Csc::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        assert!(Csc::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csc::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        assert!(Csc::from_raw(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 1.0]).is_err());
        assert!(Csc::from_raw(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let e = Csc::empty(4, 2);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.in_degrees(), vec![0, 0]);
        assert_eq!(e.to_csr().nnz(), 0);
    }
}
