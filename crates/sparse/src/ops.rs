//! Reference full-precision kernels — the cuSPARSE / GraphBLAST stand-ins.
//!
//! Every speedup reported by the paper is *relative to* full-precision CSR
//! kernels: `cusparseScsrmv` / `cusparseScsrgemm` for the kernel plots
//! (Figures 6–7) and GraphBLAST's masked SpMV/SpMSpV for the algorithm tables
//! (Tables VII–IX).  This module implements those baselines from scratch:
//!
//! * [`spmv`] / [`spmv_parallel`] — row-parallel CSR SpMV (`y = A·x`),
//! * [`spmv_masked`] — SpMV with a complemented-mask output filter, the core
//!   of GraphBLAST's pull-direction BFS step,
//! * [`spmspv`] — sparse-vector (push-direction) SpMV,
//! * [`spmv_semiring`] — SpMV over min-plus / arithmetic semirings for
//!   SSSP/CC/PR baselines,
//! * [`spgemm`] / [`spgemm_parallel`] — Gustavson row-by-row SpGEMM,
//! * [`spgemm_masked_sum`] — masked SpGEMM reduced to a scalar, the baseline
//!   for Triangle Counting.

use rayon::prelude::*;

use crate::csr::Csr;
use crate::dense::{DenseVec, SparseVec};
use crate::error::SparseError;

/// Check that `A` (`m×n`) and `x` (length `n`) are compatible for SpMV.
fn check_spmv_dims(a: &Csr, x_len: usize) -> Result<(), SparseError> {
    if a.ncols() != x_len {
        return Err(SparseError::DimensionMismatch {
            op: "spmv",
            left: (a.nrows(), a.ncols()),
            right: (x_len, 1),
        });
    }
    Ok(())
}

/// Sequential CSR SpMV: `y = A · x` over the arithmetic semiring.
///
/// This is the single-threaded reference used to validate every other kernel.
pub fn spmv(a: &Csr, x: &DenseVec) -> Result<DenseVec, SparseError> {
    check_spmv_dims(a, x.len())?;
    let xs = x.as_slice();
    let mut y = vec![0.0f32; a.nrows()];
    for (r, out) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        let mut acc = 0.0f32;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * xs[c];
        }
        *out = acc;
    }
    Ok(DenseVec::from_vec(y))
}

/// Row-parallel CSR SpMV — the `cusparseScsrmv` stand-in used as the baseline
/// in the kernel benchmarks.  One Rayon task per chunk of rows mirrors the
/// one-warp-per-row-chunk scheduling of the GPU baseline.
pub fn spmv_parallel(a: &Csr, x: &DenseVec) -> Result<DenseVec, SparseError> {
    check_spmv_dims(a, x.len())?;
    let xs = x.as_slice();
    let mut y = vec![0.0f32; a.nrows()];
    y.par_iter_mut().enumerate().for_each(|(r, out)| {
        let (cols, vals) = a.row(r);
        let mut acc = 0.0f32;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * xs[c];
        }
        *out = acc;
    });
    Ok(DenseVec::from_vec(y))
}

/// Masked SpMV: `y = (A · x) .* ¬mask` — entries whose mask bit is set are
/// forced to zero.  GraphBLAST's BFS applies the visited-vertex mask this way
/// (with early exit); the paper's BFS applies the same mask inside the bit
/// kernel right before the store.
pub fn spmv_masked(a: &Csr, x: &DenseVec, mask: &[bool]) -> Result<DenseVec, SparseError> {
    check_spmv_dims(a, x.len())?;
    if mask.len() != a.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv_masked",
            left: (a.nrows(), a.ncols()),
            right: (mask.len(), 1),
        });
    }
    let xs = x.as_slice();
    let mut y = vec![0.0f32; a.nrows()];
    y.par_iter_mut().enumerate().for_each(|(r, out)| {
        if mask[r] {
            // Early exit on masked rows, as GraphBLAST does.
            *out = 0.0;
            return;
        }
        let (cols, vals) = a.row(r);
        let mut acc = 0.0f32;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * xs[c];
        }
        *out = acc;
    });
    Ok(DenseVec::from_vec(y))
}

/// Push-direction sparse-vector SpMV: `y = A^T · x` over a sparse frontier
/// `x`, computed by scattering each frontier vertex's out-neighbour list
/// (row of `A`).  Returns a sparse result.
///
/// GraphBLAST switches to this kernel when the frontier is sparse; the
/// baseline BFS/SSSP use it for their push iterations.
pub fn spmspv(a: &Csr, x: &SparseVec) -> Result<SparseVec, SparseError> {
    if a.nrows() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmspv",
            left: (a.nrows(), a.ncols()),
            right: (x.len(), 1),
        });
    }
    let mut acc: Vec<f32> = vec![0.0; a.ncols()];
    let mut touched: Vec<usize> = Vec::new();
    for (i, xv) in x.iter() {
        let (cols, vals) = a.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            if acc[c] == 0.0 {
                touched.push(c);
            }
            acc[c] += v * xv;
        }
    }
    touched.sort_unstable();
    touched.dedup();
    let values: Vec<f32> = touched.iter().map(|&c| acc[c]).collect();
    Ok(SparseVec::from_parts(a.ncols(), touched, values))
}

/// The semiring selector for [`spmv_semiring`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiringKind {
    /// `(+, ×)` over reals — PageRank, TC.
    Arithmetic,
    /// `(min, +)` with identity `+∞` — SSSP, CC.
    MinPlus,
    /// `(max, ×)` — MIS, graph colouring.
    MaxTimes,
    /// `(|, &)` over booleans encoded as 0.0/1.0 — BFS.
    Boolean,
}

/// CSR SpMV generalized over the semirings of Table IV, used by the baseline
/// (GraphBLAST-like) algorithm implementations.
pub fn spmv_semiring(a: &Csr, x: &DenseVec, kind: SemiringKind) -> Result<DenseVec, SparseError> {
    check_spmv_dims(a, x.len())?;
    let xs = x.as_slice();
    let identity = match kind {
        SemiringKind::Arithmetic | SemiringKind::Boolean => 0.0f32,
        SemiringKind::MinPlus => f32::INFINITY,
        SemiringKind::MaxTimes => f32::NEG_INFINITY,
    };
    let mut y = vec![identity; a.nrows()];
    y.par_iter_mut().enumerate().for_each(|(r, out)| {
        let (cols, vals) = a.row(r);
        let mut acc = identity;
        for (&c, &v) in cols.iter().zip(vals) {
            match kind {
                SemiringKind::Arithmetic => acc += v * xs[c],
                SemiringKind::Boolean => {
                    if v != 0.0 && xs[c] != 0.0 {
                        acc = 1.0;
                    }
                }
                SemiringKind::MinPlus => acc = acc.min(v + xs[c]),
                SemiringKind::MaxTimes => acc = acc.max(v * xs[c]),
            }
        }
        *out = acc;
    });
    Ok(DenseVec::from_vec(y))
}

/// Check SpGEMM operand compatibility.
fn check_spgemm_dims(a: &Csr, b: &Csr) -> Result<(), SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "spgemm",
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    Ok(())
}

/// Sequential Gustavson SpGEMM: `C = A · B` over the arithmetic semiring.
pub fn spgemm(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    check_spgemm_dims(a, b)?;
    let rows = gustavson_rows(a, b, 0..a.nrows());
    Ok(assemble_rows(a.nrows(), b.ncols(), rows))
}

/// Row-parallel Gustavson SpGEMM — the `cusparseScsrgemm` stand-in.
pub fn spgemm_parallel(a: &Csr, b: &Csr) -> Result<Csr, SparseError> {
    check_spgemm_dims(a, b)?;
    let rows: Vec<(Vec<usize>, Vec<f32>)> = (0..a.nrows())
        .into_par_iter()
        .map(|r| gustavson_row(a, b, r))
        .collect();
    Ok(assemble_rows(a.nrows(), b.ncols(), rows))
}

fn gustavson_rows(a: &Csr, b: &Csr, range: std::ops::Range<usize>) -> Vec<(Vec<usize>, Vec<f32>)> {
    range.map(|r| gustavson_row(a, b, r)).collect()
}

/// Compute one output row of `A·B` with a dense accumulator (Gustavson).
fn gustavson_row(a: &Csr, b: &Csr, r: usize) -> (Vec<usize>, Vec<f32>) {
    // A dense accumulator plus occupancy markers sized to B's column count;
    // allocated per call to stay thread-safe under Rayon (the allocation cost
    // is part of what the bit kernels avoid, as in the real baseline).
    let mut dense = vec![0.0f32; b.ncols()];
    let mut occupied = vec![false; b.ncols()];
    let mut touched: Vec<usize> = Vec::new();
    let (a_cols, a_vals) = a.row(r);
    for (&k, &av) in a_cols.iter().zip(a_vals) {
        let (b_cols, b_vals) = b.row(k);
        for (&c, &bv) in b_cols.iter().zip(b_vals) {
            if !occupied[c] {
                occupied[c] = true;
                touched.push(c);
            }
            dense[c] += av * bv;
        }
    }
    touched.sort_unstable();
    let vals: Vec<f32> = touched.iter().map(|&c| dense[c]).collect();
    (touched, vals)
}

fn assemble_rows(nrows: usize, ncols: usize, rows: Vec<(Vec<usize>, Vec<f32>)>) -> Csr {
    let mut rowptr = vec![0usize; nrows + 1];
    let mut colind = Vec::new();
    let mut values = Vec::new();
    for (r, (cols, vals)) in rows.into_iter().enumerate() {
        colind.extend_from_slice(&cols);
        values.extend_from_slice(&vals);
        rowptr[r + 1] = colind.len();
    }
    Csr::from_raw(nrows, ncols, rowptr, colind, values)
        .expect("gustavson assembly produces valid CSR")
}

/// Masked SpGEMM reduced to a scalar: `sum(mask .* (A · B))`, counting each
/// product only where the mask has a stored entry.  With `A = L`, `B = L^T`
/// and `mask = L` this is exactly the GraphBLAS triangle-counting formulation
/// the baseline TC uses.
pub fn spgemm_masked_sum(a: &Csr, b: &Csr, mask: &Csr) -> Result<f64, SparseError> {
    check_spgemm_dims(a, b)?;
    if mask.nrows() != a.nrows() || mask.ncols() != b.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "spgemm_masked_sum",
            left: (a.nrows(), b.ncols()),
            right: (mask.nrows(), mask.ncols()),
        });
    }
    let total: f64 = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let (mask_cols, _) = mask.row(r);
            if mask_cols.is_empty() {
                return 0.0f64;
            }
            let (a_cols, a_vals) = a.row(r);
            let mut row_sum = 0.0f64;
            // For each masked output position (r, c), compute the dot product
            // of A's row r and B's column c via merge of sorted index lists.
            for &c in mask_cols {
                // B stored by rows: we need column c of B, i.e. row c of B^T.
                // To stay CSR-only the caller passes B already transposed when
                // a column access pattern is wanted; here we do the standard
                // row(A) x row(B^T) merge by treating `b` as B^T.
                let (bt_cols, bt_vals) = b.row(c);
                let mut i = 0;
                let mut j = 0;
                while i < a_cols.len() && j < bt_cols.len() {
                    match a_cols[i].cmp(&bt_cols[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            row_sum += (a_vals[i] * bt_vals[j]) as f64;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            row_sum
        })
        .sum();
    Ok(total)
}

/// Sum all stored values of a matrix (the reduction step of TC).
pub fn reduce_sum(a: &Csr) -> f64 {
    a.values().iter().map(|&v| v as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample_a() -> Csr {
        // [ 1 2 0 ]
        // [ 0 0 3 ]
        // [ 4 0 5 ]
        Csr::from_dense(&[1., 2., 0., 0., 0., 3., 4., 0., 5.], 3, 3)
    }

    fn sample_b() -> Csr {
        // [ 1 0 ]
        // [ 0 1 ]
        // [ 2 2 ]
        Csr::from_dense(&[1., 0., 0., 1., 2., 2.], 3, 2)
    }

    #[test]
    fn spmv_matches_dense_computation() {
        let a = sample_a();
        let x = DenseVec::from_vec(vec![1.0, 2.0, 3.0]);
        let y = spmv(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 9.0, 19.0]);
        let yp = spmv_parallel(&a, &x).unwrap();
        assert_eq!(yp, y);
    }

    #[test]
    fn spmv_dimension_mismatch() {
        let a = sample_a();
        let x = DenseVec::zeros(5);
        assert!(spmv(&a, &x).is_err());
        assert!(spmv_parallel(&a, &x).is_err());
    }

    #[test]
    fn masked_spmv_zeroes_masked_rows() {
        let a = sample_a();
        let x = DenseVec::filled(3, 1.0);
        let mask = vec![false, true, false];
        let y = spmv_masked(&a, &x, &mask).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 0.0, 9.0]);
        assert!(spmv_masked(&a, &x, &[false; 2]).is_err());
    }

    #[test]
    fn spmspv_matches_dense_spmv_on_transpose() {
        // Pushing a sparse frontier along A's out-edges equals A^T · x.
        let a = sample_a();
        let frontier = SparseVec::single(3, 0, 1.0);
        let pushed = spmspv(&a, &frontier).unwrap();
        let dense_ref = spmv(&a.transpose(), &frontier.to_dense()).unwrap();
        assert_eq!(pushed.to_dense(), dense_ref);

        // A multi-entry frontier exercises accumulation across pushed rows.
        let frontier2 = SparseVec::from_parts(3, vec![0, 2], vec![1.0, 2.0]);
        let pushed2 = spmspv(&a, &frontier2).unwrap();
        let dense_ref2 = spmv(&a.transpose(), &frontier2.to_dense()).unwrap();
        assert_eq!(pushed2.to_dense(), dense_ref2);
    }

    #[test]
    fn semiring_spmv_minplus() {
        // Distances via one relaxation step from x.
        let a = sample_a();
        let x = DenseVec::from_vec(vec![0.0, f32::INFINITY, 10.0]);
        let y = spmv_semiring(&a, &x, SemiringKind::MinPlus).unwrap();
        // row0: min(1+0, 2+inf) = 1 ; row1: 3+10 = 13 ; row2: min(4+0, 5+10) = 4
        assert_eq!(y.as_slice(), &[1.0, 13.0, 4.0]);
    }

    #[test]
    fn semiring_spmv_boolean_and_maxtimes() {
        let a = sample_a().binarized();
        let x = DenseVec::from_vec(vec![1.0, 0.0, 0.0]);
        let y = spmv_semiring(&a, &x, SemiringKind::Boolean).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 0.0, 1.0]);
        let m = spmv_semiring(
            &sample_a(),
            &DenseVec::filled(3, 1.0),
            SemiringKind::MaxTimes,
        )
        .unwrap();
        assert_eq!(m.as_slice(), &[2.0, 3.0, 5.0]);
    }

    #[test]
    fn spgemm_matches_dense_multiply() {
        let a = sample_a();
        let b = sample_b();
        let c = spgemm(&a, &b).unwrap();
        // Dense reference.
        let ad = a.to_dense();
        let bd = b.to_dense();
        let mut expected = vec![0.0f32; 3 * 2];
        for i in 0..3 {
            for k in 0..3 {
                for j in 0..2 {
                    expected[i * 2 + j] += ad[i * 3 + k] * bd[k * 2 + j];
                }
            }
        }
        assert_eq!(c.to_dense(), expected);
        let cp = spgemm_parallel(&a, &b).unwrap();
        assert_eq!(cp, c);
    }

    #[test]
    fn spgemm_dimension_mismatch() {
        let a = sample_a();
        let bad = Csr::identity(5);
        assert!(spgemm(&a, &bad).is_err());
        assert!(spgemm_parallel(&a, &bad).is_err());
    }

    #[test]
    fn masked_sum_counts_triangles_of_k3() {
        // Complete graph on 3 vertices has exactly 1 triangle.
        let mut coo = Coo::new(3, 3);
        for a in 0..3usize {
            for b in 0..3usize {
                if a != b {
                    coo.push(a, b, 1.0).unwrap();
                }
            }
        }
        let adj = Csr::from_coo(&coo);
        let l = adj.lower_triangle();
        // C = L * L^T masked by L, summed = number of triangles.
        // spgemm_masked_sum treats the second operand as B^T (rows = columns
        // of B), so passing `l` directly gives rows of L = columns of L^T.
        let tri = spgemm_masked_sum(&l, &l, &l).unwrap();
        assert_eq!(tri, 1.0);
    }

    #[test]
    fn masked_sum_dimension_checks() {
        let a = sample_a();
        assert!(spgemm_masked_sum(&a, &a, &Csr::identity(2)).is_err());
    }

    #[test]
    fn reduce_sum_adds_values() {
        let a = sample_a();
        assert_eq!(reduce_sum(&a), 15.0);
        assert_eq!(reduce_sum(&Csr::empty(3, 3)), 0.0);
    }
}
