//! Dense and sparse vectors — the frontier/result vectors of GraphBLAS ops.
//!
//! GraphBLAST switches between dense and sparse vector representations
//! depending on frontier sparsity; the baseline algorithms in
//! `bitgblas-algorithms` do the same.  Bit-GraphBLAS keeps frontiers dense
//! (binarized or full-precision), so [`DenseVec`] is the main type; the
//! [`SparseVec`] is used by the baseline's push-direction SpMSpV.

use std::ops::{Index, IndexMut};

/// A dense `f32` vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVec {
    data: Vec<f32>,
}

impl DenseVec {
    /// Vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        DenseVec { data: vec![0.0; n] }
    }

    /// Vector of `n` copies of `value`.
    pub fn filled(n: usize, value: f32) -> Self {
        DenseVec {
            data: vec![value; n],
        }
    }

    /// Vector of `n` copies of `f32::INFINITY` — the identity of the min-plus
    /// (tropical) semiring used by SSSP and CC.
    pub fn infinities(n: usize) -> Self {
        Self::filled(n, f32::INFINITY)
    }

    /// Wrap an existing buffer.
    pub fn from_vec(data: Vec<f32>) -> Self {
        DenseVec { data }
    }

    /// Indicator vector: 1.0 at the given positions, 0.0 elsewhere.
    pub fn indicator(n: usize, positions: &[usize]) -> Self {
        let mut v = Self::zeros(n);
        for &p in positions {
            v.data[p] = 1.0;
        }
        v
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Number of finite entries (used with the min-plus semiring where the
    /// "empty" value is +inf rather than 0).
    pub fn n_finite(&self) -> usize {
        self.data.iter().filter(|x| x.is_finite()).count()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Indices of nonzero entries.
    pub fn nonzero_indices(&self) -> Vec<usize> {
        self.data
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| (x != 0.0).then_some(i))
            .collect()
    }

    /// Convert to a [`SparseVec`] holding the nonzero entries.
    pub fn to_sparse(&self) -> SparseVec {
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, &x) in self.data.iter().enumerate() {
            if x != 0.0 {
                idx.push(i);
                vals.push(x);
            }
        }
        SparseVec {
            len: self.data.len(),
            indices: idx,
            values: vals,
        }
    }

    /// Element-wise maximum-norm distance to another vector (used for
    /// PageRank convergence checks).
    pub fn max_abs_diff(&self, other: &DenseVec) -> f32 {
        assert_eq!(self.len(), other.len());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Set every entry to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Element-wise in-place minimum with another vector (the accumulate step
    /// of the min-plus semiring).
    pub fn ewise_min_assign(&mut self, other: &DenseVec) {
        assert_eq!(self.len(), other.len());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = a.min(b);
        }
    }

    /// Element-wise in-place addition.
    pub fn ewise_add_assign(&mut self, other: &DenseVec) {
        assert_eq!(self.len(), other.len());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale all entries by `s`.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }
}

impl Index<usize> for DenseVec {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for DenseVec {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl From<Vec<f32>> for DenseVec {
    fn from(data: Vec<f32>) -> Self {
        DenseVec { data }
    }
}

/// A sparse vector: sorted indices plus values, with an explicit logical
/// length.  Used by the baseline's push-direction SpMSpV when the frontier is
/// small.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    len: usize,
    indices: Vec<usize>,
    values: Vec<f32>,
}

impl SparseVec {
    /// Empty sparse vector of logical length `len`.
    pub fn empty(len: usize) -> Self {
        SparseVec {
            len,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from parallel index/value arrays (indices must be strictly
    /// increasing and in range).
    pub fn from_parts(len: usize, indices: Vec<usize>, values: Vec<f32>) -> Self {
        assert_eq!(indices.len(), values.len());
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be sorted"
        );
        debug_assert!(indices.iter().all(|&i| i < len), "index out of range");
        SparseVec {
            len,
            indices,
            values,
        }
    }

    /// Sparse vector with a single nonzero entry.
    pub fn single(len: usize, index: usize, value: f32) -> Self {
        Self::from_parts(len, vec![index], vec![value])
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterate over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.indices.iter().zip(&self.values).map(|(&i, &v)| (i, v))
    }

    /// Expand to a dense vector.
    pub fn to_dense(&self) -> DenseVec {
        let mut v = DenseVec::zeros(self.len);
        for (i, x) in self.iter() {
            v[i] = x;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(DenseVec::zeros(4).as_slice(), &[0.0; 4]);
        assert_eq!(DenseVec::filled(3, 2.5).as_slice(), &[2.5; 3]);
        assert!(DenseVec::infinities(2)
            .as_slice()
            .iter()
            .all(|x| x.is_infinite()));
        let ind = DenseVec::indicator(5, &[1, 3]);
        assert_eq!(ind.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(ind.nnz(), 2);
    }

    #[test]
    fn indexing_and_mutation() {
        let mut v = DenseVec::zeros(3);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        v.fill(1.0);
        assert_eq!(v.sum(), 3.0);
        v.scale(2.0);
        assert_eq!(v.sum(), 6.0);
    }

    #[test]
    fn sparse_dense_roundtrip() {
        let d = DenseVec::from_vec(vec![0.0, 3.0, 0.0, -1.0, 0.0]);
        let s = d.to_sparse();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.to_dense(), d);
        assert_eq!(d.nonzero_indices(), vec![1, 3]);
    }

    #[test]
    fn ewise_operations() {
        let mut a = DenseVec::from_vec(vec![1.0, 5.0, f32::INFINITY]);
        let b = DenseVec::from_vec(vec![2.0, 3.0, 7.0]);
        a.ewise_min_assign(&b);
        assert_eq!(a.as_slice(), &[1.0, 3.0, 7.0]);
        a.ewise_add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0, 6.0, 14.0]);
    }

    #[test]
    fn diff_and_counts() {
        let a = DenseVec::from_vec(vec![1.0, 2.0, 3.0]);
        let b = DenseVec::from_vec(vec![1.5, 2.0, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        let c = DenseVec::from_vec(vec![f32::INFINITY, 0.0, 1.0]);
        assert_eq!(c.n_finite(), 2);
        assert_eq!(c.nnz(), 2); // inf counts as nonzero, 0.0 does not
    }

    #[test]
    fn sparse_vec_basics() {
        let s = SparseVec::single(10, 4, 2.0);
        assert_eq!(s.len(), 10);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(4, 2.0)]);
        let e = SparseVec::empty(0);
        assert!(e.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_ewise_panics() {
        let mut a = DenseVec::zeros(2);
        let b = DenseVec::zeros(3);
        a.ewise_add_assign(&b);
    }
}
