//! Coordinate (triplet) format — the construction format.
//!
//! COO is the natural format for building matrices incrementally (generators,
//! Matrix Market readers).  It is converted to [`crate::Csr`] before any
//! computation.

use crate::error::SparseError;

/// A sparse matrix in coordinate (COO / triplet) format.
///
/// Entries may be pushed in any order and may contain duplicates; duplicates
/// are summed during [`Coo::to_csr`] conversion (the GraphBLAS "dup" build
/// semantics for the arithmetic semiring; for adjacency matrices duplicates
/// simply stay nonzero).
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f32>,
}

impl Coo {
    /// Create an empty `nrows × ncols` COO matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Create an empty COO matrix with reserved capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Build a COO matrix from parallel triplet slices.
    ///
    /// Returns an error if any index is out of bounds or the slices have
    /// mismatched lengths.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f32],
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::MalformedStructure(format!(
                "triplet arrays have mismatched lengths: {} rows, {} cols, {} vals",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        let mut coo = Coo::with_capacity(nrows, ncols, rows.len());
        for ((&r, &c), &v) in rows.iter().zip(cols).zip(vals) {
            coo.push(r, c, v)?;
        }
        Ok(coo)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including any duplicates or explicit zeros).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Append a single entry.
    pub fn push(&mut self, row: usize, col: usize, val: f32) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Append an entry with value `1.0` — convenient for adjacency matrices.
    pub fn push_edge(&mut self, row: usize, col: usize) -> Result<(), SparseError> {
        self.push(row, col, 1.0)
    }

    /// Append both `(row, col)` and `(col, row)` with value `1.0`, building an
    /// undirected (symmetric) adjacency matrix.
    pub fn push_undirected_edge(&mut self, a: usize, b: usize) -> Result<(), SparseError> {
        self.push(a, b, 1.0)?;
        if a != b {
            self.push(b, a, 1.0)?;
        }
        Ok(())
    }

    /// Iterate over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSR.  Duplicate entries are summed, entries whose summed
    /// value is exactly `0.0` are kept (explicit zeros are preserved so that
    /// binarization decisions stay with the caller).
    pub fn to_csr(&self) -> crate::Csr {
        crate::Csr::from_coo(self)
    }

    /// Convert to CSR, dropping entries whose summed value is `0.0` and
    /// mapping every remaining value to `1.0` — the "binary adjacency matrix"
    /// view used throughout the paper.
    pub fn to_binary_csr(&self) -> crate::Csr {
        let csr = self.to_csr();
        csr.binarized()
    }

    /// Access the raw triplet arrays `(rows, cols, vals)`.
    pub fn raw(&self) -> (&[usize], &[usize], &[f32]) {
        (&self.rows, &self.cols, &self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let coo = Coo::new(5, 7);
        assert_eq!(coo.nrows(), 5);
        assert_eq!(coo.ncols(), 7);
        assert_eq!(coo.nnz(), 0);
        assert_eq!(coo.iter().count(), 0);
    }

    #[test]
    fn push_and_iterate() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(2, 2, -1.0).unwrap();
        coo.push_edge(1, 0).unwrap();
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 2.0), (2, 2, -1.0), (1, 0, 1.0)]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = Coo::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(coo.push(0, 5, 1.0).is_err());
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn from_triplets_validates_lengths() {
        let err = Coo::from_triplets(2, 2, &[0, 1], &[0], &[1.0, 2.0]);
        assert!(matches!(err, Err(SparseError::MalformedStructure(_))));

        let ok = Coo::from_triplets(2, 2, &[0, 1], &[1, 0], &[1.0, 2.0]).unwrap();
        assert_eq!(ok.nnz(), 2);
    }

    #[test]
    fn undirected_edge_adds_both_directions() {
        let mut coo = Coo::new(4, 4);
        coo.push_undirected_edge(1, 3).unwrap();
        coo.push_undirected_edge(2, 2).unwrap(); // self loop added once
        assert_eq!(coo.nnz(), 3);
        let entries: Vec<_> = coo.iter().map(|(r, c, _)| (r, c)).collect();
        assert!(entries.contains(&(1, 3)));
        assert!(entries.contains(&(3, 1)));
        assert!(entries.contains(&(2, 2)));
    }

    #[test]
    fn binary_csr_maps_values_to_one() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 5.0).unwrap();
        coo.push(1, 2, -3.5).unwrap();
        coo.push(2, 1, 0.0).unwrap(); // explicit zero dropped by binarized()
        let csr = coo.to_binary_csr();
        assert_eq!(csr.nnz(), 2);
        assert!(csr.values().iter().all(|&v| v == 1.0));
    }
}
