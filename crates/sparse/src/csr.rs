//! Compressed Sparse Row — the workhorse format and the baseline's storage.
//!
//! The paper's baselines (cuSPARSE `csrmv`/`csrgemm`, GraphBLAST) all operate
//! on 32-bit-float CSR; B2SR is constructed *from* CSR.  This module provides
//! a complete CSR implementation: construction from COO, structural
//! validation, row access, transpose (`csr2csc` analogue), binarization,
//! dense conversion, and helpers used by the tile-extraction step of the
//! CSR→B2SR converter.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::error::SparseError;

/// A sparse matrix in Compressed Sparse Row format with `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<usize>,
    values: Vec<f32>,
}

impl Csr {
    /// Create an empty `nrows × ncols` matrix (no stored entries).
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colind: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from raw CSR arrays, validating the structure.
    ///
    /// Requirements checked: `rowptr.len() == nrows + 1`, `rowptr` monotone
    /// non-decreasing starting at 0, `rowptr[nrows] == colind.len() ==
    /// values.len()`, all column indices in range, and column indices sorted
    /// strictly increasing within each row.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if rowptr.len() != nrows + 1 {
            return Err(SparseError::MalformedStructure(format!(
                "rowptr has length {}, expected {}",
                rowptr.len(),
                nrows + 1
            )));
        }
        if rowptr[0] != 0 {
            return Err(SparseError::MalformedStructure(
                "rowptr[0] must be 0".into(),
            ));
        }
        if colind.len() != values.len() {
            return Err(SparseError::MalformedStructure(format!(
                "colind ({}) and values ({}) have different lengths",
                colind.len(),
                values.len()
            )));
        }
        if *rowptr.last().unwrap() != colind.len() {
            return Err(SparseError::MalformedStructure(format!(
                "rowptr[nrows] = {} but there are {} stored entries",
                rowptr.last().unwrap(),
                colind.len()
            )));
        }
        for r in 0..nrows {
            if rowptr[r] > rowptr[r + 1] {
                return Err(SparseError::MalformedStructure(format!(
                    "rowptr is not monotone at row {r}"
                )));
            }
            let row = &colind[rowptr[r]..rowptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::MalformedStructure(format!(
                        "column indices not strictly increasing in row {r}"
                    )));
                }
            }
            if let Some(&c) = row.last() {
                if c >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(Csr {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        })
    }

    /// Build from a COO matrix, summing duplicate entries and sorting column
    /// indices within each row.
    pub fn from_coo(coo: &Coo) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let (rows, cols, vals) = coo.raw();

        // Counting sort by row.
        let mut rowptr = vec![0usize; nrows + 1];
        for &r in rows {
            rowptr[r + 1] += 1;
        }
        for i in 0..nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut next = rowptr.clone();
        let nnz = rows.len();
        let mut colind = vec![0usize; nnz];
        let mut values = vec![0f32; nnz];
        for i in 0..nnz {
            let slot = next[rows[i]];
            colind[slot] = cols[i];
            values[slot] = vals[i];
            next[rows[i]] += 1;
        }

        // Sort within each row and merge duplicates.
        let mut out_colind = Vec::with_capacity(nnz);
        let mut out_values = Vec::with_capacity(nnz);
        let mut out_rowptr = vec![0usize; nrows + 1];
        let mut scratch: Vec<(usize, f32)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            scratch.extend(
                colind[rowptr[r]..rowptr[r + 1]]
                    .iter()
                    .copied()
                    .zip(values[rowptr[r]..rowptr[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_colind.push(c);
                out_values.push(v);
                i = j;
            }
            out_rowptr[r + 1] = out_colind.len();
        }

        Csr {
            nrows,
            ncols,
            rowptr: out_rowptr,
            colind: out_colind,
            values: out_values,
        }
    }

    /// Build a dense matrix (row-major `nrows × ncols` slice) into CSR,
    /// storing every nonzero element.
    pub fn from_dense(dense: &[f32], nrows: usize, ncols: usize) -> Self {
        assert_eq!(dense.len(), nrows * ncols);
        let mut rowptr = vec![0usize; nrows + 1];
        let mut colind = Vec::new();
        let mut values = Vec::new();
        for r in 0..nrows {
            for c in 0..ncols {
                let v = dense[r * ncols + c];
                if v != 0.0 {
                    colind.push(c);
                    values.push(v);
                }
            }
            rowptr[r + 1] = colind.len();
        }
        Csr {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colind: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Nonzero density `nnz / (nrows * ncols)`, the x-axis of Figures 6 and 7.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// The row-pointer array (`nrows + 1` entries).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column-index array (`nnz` entries).
    pub fn colind(&self) -> &[usize] {
        &self.colind
    }

    /// The value array (`nnz` entries).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the values (structure is immutable).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f32]) {
        let range = self.rowptr[r]..self.rowptr[r + 1];
        (&self.colind[range.clone()], &self.values[range])
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.rowptr[r + 1] - self.rowptr[r]
    }

    /// Value at `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|i| vals[i])
    }

    /// Iterate over all stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Out-degree of every row (used by PageRank's column-stochastic scaling).
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }

    /// Storage footprint in bytes of the CSR arrays, assuming 4-byte integers
    /// for `rowptr`/`colind` and 4-byte floats — the "CSR size" denominator of
    /// the paper's compression ratio.
    pub fn storage_bytes(&self) -> usize {
        4 * (self.rowptr.len() + self.colind.len() + self.values.len())
    }

    /// A copy with every stored value replaced by `1.0`, dropping explicit
    /// zeros: the binary adjacency-matrix view.
    pub fn binarized(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colind = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v != 0.0 {
                    colind.push(c);
                    values.push(1.0);
                }
            }
            rowptr[r + 1] = colind.len();
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// True if every stored value equals `1.0` (a homogeneous / binary graph).
    pub fn is_binary(&self) -> bool {
        self.values.iter().all(|&v| v == 1.0)
    }

    /// Transpose, producing a CSC view of the same data — equivalent to the
    /// paper's use of `cusparseScsr2csc()`.
    pub fn to_csc(&self) -> Csc {
        Csc::from_csr(self)
    }

    /// Transpose into a new CSR matrix (`A^T` stored row-major).
    pub fn transpose(&self) -> Csr {
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colind {
            rowptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut next = rowptr.clone();
        let mut colind = vec![0usize; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c];
                colind[slot] = r;
                values[slot] = v;
                next[c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colind,
            values,
        }
    }

    /// Strictly lower-triangular part (`r > c`), used by Triangle Counting.
    pub fn lower_triangle(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colind = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if c < r {
                    colind.push(c);
                    values.push(v);
                }
            }
            rowptr[r + 1] = colind.len();
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Upper-triangular part (`c > r`).
    pub fn upper_triangle(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colind = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if c > r {
                    colind.push(c);
                    values.push(v);
                }
            }
            rowptr[r + 1] = colind.len();
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// A copy without diagonal entries.
    pub fn without_diagonal(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colind = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if c != r {
                    colind.push(c);
                    values.push(v);
                }
            }
            rowptr[r + 1] = colind.len();
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Symmetrize: `A ∨ A^T` with binary values — turns a directed adjacency
    /// matrix into an undirected one.
    pub fn symmetrized(&self) -> Csr {
        let t = self.transpose();
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz() * 2);
        for (r, c, _) in self.iter() {
            coo.push(r, c, 1.0).expect("indices already validated");
        }
        for (r, c, _) in t.iter() {
            coo.push(r, c, 1.0).expect("indices already validated");
        }
        Csr::from_coo(&coo).binarized()
    }

    /// Expand to a dense row-major matrix (tests and small examples only).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut dense = vec![0.0f32; self.nrows * self.ncols];
        for (r, c, v) in self.iter() {
            dense[r * self.ncols + c] = v;
        }
        dense
    }

    /// Convert back to COO triplets.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("indices already validated");
        }
        coo
    }

    /// Extract the dense `dim × dim` tile whose top-left corner is at
    /// `(tile_row * dim, tile_col * dim)`, padding with zeros at the matrix
    /// edge.  This is the per-tile step of the CSR→B2SR conversion
    /// (the `cusparseScsr2bsr` analogue).
    pub fn extract_tile(&self, tile_row: usize, tile_col: usize, dim: usize) -> Vec<f32> {
        let mut tile = vec![0.0f32; dim * dim];
        let r0 = tile_row * dim;
        let c0 = tile_col * dim;
        for dr in 0..dim {
            let r = r0 + dr;
            if r >= self.nrows {
                break;
            }
            let (cols, vals) = self.row(r);
            // Binary-search the start of the tile's column range.
            let start = cols.partition_point(|&c| c < c0);
            for i in start..cols.len() {
                let c = cols[i];
                if c >= c0 + dim {
                    break;
                }
                tile[dr * dim + (c - c0)] = vals[i];
            }
        }
        tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // 4x4:
        // [ 1 0 2 0 ]
        // [ 0 0 0 3 ]
        // [ 4 5 0 0 ]
        // [ 0 0 0 6 ]
        let mut coo = Coo::new(4, 4);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 3, 3.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (3, 3, 6.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_coo_sorts_and_counts() {
        let a = small();
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.rowptr(), &[0, 2, 3, 5, 6]);
        assert_eq!(a.row(0), (&[0usize, 2][..], &[1.0f32, 2.0][..]));
        assert_eq!(a.row(2), (&[0usize, 1][..], &[4.0f32, 5.0][..]));
        assert_eq!(a.get(1, 3), Some(3.0));
        assert_eq!(a.get(1, 0), None);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.5).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let a = Csr::from_coo(&coo);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), Some(4.0));
    }

    #[test]
    fn from_raw_validation() {
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // wrong rowptr length
        assert!(Csr::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        // non-monotone
        assert!(Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // unsorted columns in a row
        assert!(Csr::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // column out of range
        assert!(Csr::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // nnz mismatch
        assert!(Csr::from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let a = small();
        let dense = a.to_dense();
        let back = Csr::from_dense(&dense, 4, 4);
        assert_eq!(a, back);
    }

    #[test]
    fn transpose_is_involution_and_correct() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.get(3, 1), Some(3.0));
        assert_eq!(t.get(0, 2), Some(4.0));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn identity_and_degrees() {
        let i = Csr::identity(5);
        assert_eq!(i.nnz(), 5);
        assert!(i.is_binary());
        assert_eq!(i.out_degrees(), vec![1; 5]);
        let a = small();
        assert_eq!(a.out_degrees(), vec![2, 1, 2, 1]);
    }

    #[test]
    fn triangles_and_diagonal() {
        let a = small();
        let lower = a.lower_triangle();
        assert_eq!(lower.nnz(), 2); // (2,0) and (2,1)
        let upper = a.upper_triangle();
        assert_eq!(upper.nnz(), 2); // (0,2) and (1,3)
        let nodiag = a.without_diagonal();
        assert_eq!(nodiag.nnz(), 4);
        // lower + upper + 2 diagonal entries account for every stored entry.
        assert_eq!(lower.nnz() + upper.nnz() + 2, a.nnz());
    }

    #[test]
    fn symmetrized_is_symmetric_binary() {
        let a = small();
        let s = a.symmetrized();
        assert!(s.is_binary());
        for (r, c, _) in s.iter() {
            assert_eq!(s.get(c, r), Some(1.0), "missing mirror of ({r},{c})");
        }
    }

    #[test]
    fn binarized_drops_explicit_zeros() {
        let a = Csr::from_raw(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![0.0, 2.0, -1.0]).unwrap();
        let b = a.binarized();
        assert_eq!(b.nnz(), 2);
        assert!(b.is_binary());
        assert_eq!(b.get(0, 0), None);
    }

    #[test]
    fn density_and_storage() {
        let a = small();
        assert!((a.density() - 6.0 / 16.0).abs() < 1e-12);
        assert_eq!(a.storage_bytes(), 4 * (5 + 6 + 6));
        assert_eq!(Csr::empty(0, 0).density(), 0.0);
    }

    #[test]
    fn extract_tile_reads_correct_block() {
        let a = small();
        let t00 = a.extract_tile(0, 0, 2);
        assert_eq!(t00, vec![1.0, 0.0, 0.0, 0.0]);
        let t01 = a.extract_tile(0, 1, 2);
        assert_eq!(t01, vec![2.0, 0.0, 0.0, 3.0]);
        let t10 = a.extract_tile(1, 0, 2);
        assert_eq!(t10, vec![4.0, 5.0, 0.0, 0.0]);
        let t11 = a.extract_tile(1, 1, 2);
        assert_eq!(t11, vec![0.0, 0.0, 0.0, 6.0]);
        // Tile partially outside the matrix is zero-padded.
        let edge = a.extract_tile(1, 1, 3);
        assert_eq!(edge.len(), 9);
        // Global (3,3) = 6.0 lands at local (0,0) of the tile anchored at (3,3).
        assert_eq!(edge[0], 6.0);
        assert!(edge[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn extract_tile_edge_padding() {
        // 3x3 matrix with dim-2 tiles: bottom-right tile covers only (2,2).
        let a = Csr::from_dense(&[1., 0., 0., 0., 1., 0., 0., 0., 1.], 3, 3);
        let t = a.extract_tile(1, 1, 2);
        assert_eq!(t, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn iter_visits_all_entries_in_order() {
        let a = small();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), 6);
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
