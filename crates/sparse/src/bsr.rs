//! Block Compressed Sparse Row — the format that inspired B2SR's upper level.
//!
//! BSR partitions the matrix into `block_dim × block_dim` tiles and stores a
//! CSR structure over the *non-empty* tiles, with each tile kept as a dense
//! float block.  The paper obtains this structure through
//! `cusparseXcsr2bsrNnz()` / `cusparseScsr2bsr()` as an intermediate step of
//! the CSR→B2SR conversion; this module is the from-scratch equivalent and is
//! also used on its own as a comparison point in the storage benchmarks.

use crate::csr::Csr;

/// A sparse matrix in Block CSR format: a CSR index over non-empty
/// `block_dim × block_dim` tiles, each stored as a dense row-major `f32`
/// block.
#[derive(Debug, Clone, PartialEq)]
pub struct Bsr {
    nrows: usize,
    ncols: usize,
    block_dim: usize,
    n_block_rows: usize,
    n_block_cols: usize,
    /// CSR row pointer over block rows (`n_block_rows + 1` entries).
    block_rowptr: Vec<usize>,
    /// Block-column index of each non-empty block.
    block_colind: Vec<usize>,
    /// Dense blocks, `block_dim * block_dim` values each, concatenated in the
    /// order of `block_colind`.
    blocks: Vec<f32>,
}

impl Bsr {
    /// Convert a CSR matrix to BSR with the given block dimension.
    ///
    /// Equivalent to `cusparseXcsr2bsrNnz` (count non-empty blocks per block
    /// row) followed by `cusparseScsr2bsr` (materialize the dense blocks).
    ///
    /// # Panics
    /// Panics if `block_dim` is zero.
    pub fn from_csr(csr: &Csr, block_dim: usize) -> Self {
        assert!(block_dim > 0, "block dimension must be positive");
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let n_block_rows = nrows.div_ceil(block_dim);
        let n_block_cols = ncols.div_ceil(block_dim);

        // Pass 1: find the set of non-empty block columns per block row
        // (the csr2bsrNnz step).
        let mut block_rowptr = vec![0usize; n_block_rows + 1];
        let mut block_cols_per_row: Vec<Vec<usize>> = vec![Vec::new(); n_block_rows];
        for br in 0..n_block_rows {
            let mut seen: Vec<usize> = Vec::new();
            let r_end = ((br + 1) * block_dim).min(nrows);
            for r in br * block_dim..r_end {
                for &c in csr.row(r).0 {
                    seen.push(c / block_dim);
                }
            }
            seen.sort_unstable();
            seen.dedup();
            block_rowptr[br + 1] = block_rowptr[br] + seen.len();
            block_cols_per_row[br] = seen;
        }

        // Pass 2: materialize dense blocks.
        let n_blocks = block_rowptr[n_block_rows];
        let mut block_colind = Vec::with_capacity(n_blocks);
        let mut blocks = vec![0.0f32; n_blocks * block_dim * block_dim];
        for (br, cols) in block_cols_per_row.iter().enumerate() {
            for (slot, &bc) in cols.iter().enumerate() {
                let block_idx = block_rowptr[br] + slot;
                block_colind.push(bc);
                let tile = csr.extract_tile(br, bc, block_dim);
                let dst = &mut blocks
                    [block_idx * block_dim * block_dim..(block_idx + 1) * block_dim * block_dim];
                dst.copy_from_slice(&tile);
            }
        }

        Bsr {
            nrows,
            ncols,
            block_dim,
            n_block_rows,
            n_block_cols,
            block_rowptr,
            block_colind,
            blocks,
        }
    }

    /// Number of rows of the underlying matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the underlying matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Block dimension.
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Number of block rows.
    pub fn n_block_rows(&self) -> usize {
        self.n_block_rows
    }

    /// Number of block columns.
    pub fn n_block_cols(&self) -> usize {
        self.n_block_cols
    }

    /// Number of non-empty blocks (the `cusparseXcsr2bsrNnz` result).
    pub fn n_blocks(&self) -> usize {
        self.block_colind.len()
    }

    /// Block row-pointer array.
    pub fn block_rowptr(&self) -> &[usize] {
        &self.block_rowptr
    }

    /// Block column-index array.
    pub fn block_colind(&self) -> &[usize] {
        &self.block_colind
    }

    /// The dense block at slot `idx` (row-major `block_dim × block_dim`).
    pub fn block(&self, idx: usize) -> &[f32] {
        let sz = self.block_dim * self.block_dim;
        &self.blocks[idx * sz..(idx + 1) * sz]
    }

    /// Iterate over `(block_row, block_col, dense_block)` triples.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, &[f32])> + '_ {
        (0..self.n_block_rows).flat_map(move |br| {
            (self.block_rowptr[br]..self.block_rowptr[br + 1])
                .map(move |idx| (br, self.block_colind[idx], self.block(idx)))
        })
    }

    /// Storage footprint in bytes: 4-byte integers for the index arrays plus
    /// 4-byte floats for the dense blocks.
    pub fn storage_bytes(&self) -> usize {
        4 * (self.block_rowptr.len() + self.block_colind.len()) + 4 * self.blocks.len()
    }

    /// Reconstruct the CSR matrix (dropping the zeros introduced by dense
    /// blocks) — used to verify the conversion is lossless.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::new(self.nrows, self.ncols);
        for (br, bc, block) in self.iter_blocks() {
            for dr in 0..self.block_dim {
                for dc in 0..self.block_dim {
                    let v = block[dr * self.block_dim + dc];
                    let (r, c) = (br * self.block_dim + dr, bc * self.block_dim + dc);
                    if v != 0.0 && r < self.nrows && c < self.ncols {
                        coo.push(r, c, v).expect("in-bounds by construction");
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample(n: usize, stride: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            if i + stride < n {
                coo.push(i, i + stride, 2.0).unwrap();
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn conversion_is_lossless() {
        for n in [7usize, 16, 33] {
            for dim in [2usize, 4, 8] {
                let a = sample(n, 3);
                let bsr = Bsr::from_csr(&a, dim);
                assert_eq!(bsr.to_csr(), a, "n={n} dim={dim}");
            }
        }
    }

    #[test]
    fn block_counts_match_structure() {
        // 4x4 diagonal with 2x2 blocks -> only the 2 diagonal blocks non-empty.
        let a = Csr::identity(4);
        let bsr = Bsr::from_csr(&a, 2);
        assert_eq!(bsr.n_block_rows(), 2);
        assert_eq!(bsr.n_block_cols(), 2);
        assert_eq!(bsr.n_blocks(), 2);
        assert_eq!(bsr.block_rowptr(), &[0, 1, 2]);
        assert_eq!(bsr.block_colind(), &[0, 1]);
        assert_eq!(bsr.block(0), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn handles_dimension_not_multiple_of_block() {
        let a = Csr::identity(5);
        let bsr = Bsr::from_csr(&a, 4);
        assert_eq!(bsr.n_block_rows(), 2);
        assert_eq!(bsr.n_blocks(), 2);
        assert_eq!(bsr.to_csr(), a);
    }

    #[test]
    fn empty_matrix_has_no_blocks() {
        let a = Csr::empty(10, 10);
        let bsr = Bsr::from_csr(&a, 4);
        assert_eq!(bsr.n_blocks(), 0);
        assert_eq!(bsr.storage_bytes(), 4 * (bsr.block_rowptr().len()));
        assert_eq!(bsr.to_csr().nnz(), 0);
    }

    #[test]
    fn storage_grows_with_density() {
        let sparse = sample(64, 17);
        let dense_diag = sample(64, 1);
        let b1 = Bsr::from_csr(&sparse, 8);
        let b2 = Bsr::from_csr(&dense_diag, 8);
        // The denser matrix near the diagonal packs into fewer or equal blocks
        // per nonzero, but both must report consistent byte counts.
        assert_eq!(
            b1.storage_bytes(),
            4 * (b1.block_rowptr().len() + b1.block_colind().len()) + 4 * b1.n_blocks() * 64
        );
        assert_eq!(
            b2.storage_bytes(),
            4 * (b2.block_rowptr().len() + b2.block_colind().len()) + 4 * b2.n_blocks() * 64
        );
    }

    #[test]
    fn iter_blocks_visits_every_block_once() {
        let a = sample(32, 5);
        let bsr = Bsr::from_csr(&a, 8);
        let visited: Vec<(usize, usize)> = bsr.iter_blocks().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(visited.len(), bsr.n_blocks());
        let mut dedup = visited.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), visited.len());
    }

    #[test]
    #[should_panic(expected = "block dimension must be positive")]
    fn zero_block_dim_panics() {
        let _ = Bsr::from_csr(&Csr::identity(4), 0);
    }
}
