//! # bitgblas-sparse
//!
//! Sparse-matrix substrate for the Bit-GraphBLAS reproduction.
//!
//! The paper builds B2SR on top of conventional sparse formats and compares
//! its kernels against cuSPARSE's CSR SpMV/SpGEMM and against GraphBLAST.
//! Neither library is available here, so this crate implements the substrate
//! from scratch:
//!
//! * the classic storage formats — [`coo::Coo`], [`csr::Csr`], [`csc::Csc`],
//!   and the block format [`bsr::Bsr`] that inspired B2SR's upper level;
//! * conversions between them (including the `csr2bsr` step the paper obtains
//!   from `cusparseXcsr2bsrNnz`/`cusparseScsr2bsr`, and the `csr2csc`
//!   transpose);
//! * dense vectors ([`dense::DenseVec`]) and sparse vectors
//!   ([`dense::SparseVec`]) used as frontiers;
//! * Matrix Market I/O ([`io`]) so real SuiteSparse files can be loaded when
//!   available;
//! * reference full-precision kernels ([`ops`]): row-parallel CSR SpMV,
//!   masked SpMV, sparse-vector SpMSpV, and Gustavson SpGEMM.  These are the
//!   stand-ins for the cuSPARSE/GraphBLAST baselines in every experiment.
//!
//! All matrices store `f32` values, matching the "32-bit floating-point CSR"
//! baseline configuration used throughout the paper's evaluation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod io;
pub mod ops;

pub use bsr::Bsr;
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::{DenseVec, SparseVec};
pub use error::SparseError;
