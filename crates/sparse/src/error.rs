//! Error type shared by the sparse-matrix substrate.

use std::fmt;

/// Errors produced while constructing, converting or reading sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// Two operands have incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// The CSR/CSC structural arrays are inconsistent (non-monotone row
    /// pointer, wrong lengths, unsorted column indices, ...).
    MalformedStructure(String),
    /// A Matrix Market file could not be parsed.
    Parse(String),
    /// An I/O error occurred while reading or writing a file.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix"
            ),
            SparseError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::MalformedStructure(msg) => write!(f, "malformed sparse structure: {msg}"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 9,
            nrows: 4,
            ncols: 4,
        };
        assert!(e.to_string().contains("(5, 9)"));
        assert!(e.to_string().contains("4x4"));

        let e = SparseError::DimensionMismatch {
            op: "spmv",
            left: (3, 4),
            right: (5, 1),
        };
        assert!(e.to_string().contains("spmv"));

        let e = SparseError::MalformedStructure("rowptr not monotone".into());
        assert!(e.to_string().contains("rowptr"));
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SparseError = ioe.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
