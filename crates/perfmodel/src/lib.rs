//! # bitgblas-perfmodel
//!
//! Architecture-dependent performance modelling for the Bit-GraphBLAS
//! reproduction.
//!
//! The paper's evaluation runs on two NVIDIA GPUs (a Pascal GTX 1080 and a
//! Volta Titan V, Table VI) and explains part of B2SR's advantage with
//! memory-system effects: for `mycielskian8` the number of global-memory load
//! transactions drops 4× (6630 → 1826) and the L1 hit rate rises from 65.6 %
//! to 81.8 % (§VI-C).  No GPU is available in this environment, so this crate
//! provides the analytic counterpart used by the experiment harness:
//!
//! * [`device`] — the two device profiles with the memory-hierarchy numbers
//!   of Table VI;
//! * [`traffic`] — a memory-transaction model that walks the exact access
//!   streams of the CSR SpMV baseline and of the B2SR BMV kernel, coalesces
//!   them into transactions of the device's width, and runs them through a
//!   small cache simulator to estimate L1 hit rates;
//! * [`estimate`] — bandwidth-bound time estimates derived from the traffic,
//!   used to reproduce the architecture-dependent observations (Volta's
//!   higher bandwidth helping the float baseline more than the bit kernels).
//!
//! The B2SR-side entry points take a [`B2srLayout`] — the upper-level tile
//! structure, computable from a CSR matrix *without* converting it — so the
//! model can score hypothetical conversions.  `bitgblas-core` builds on this
//! for its automatic backend selection (`Backend::Auto`); this crate
//! deliberately does not depend on `bitgblas-core`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod device;
pub mod estimate;
pub mod traffic;

pub use device::{pascal_gtx1080, volta_titanv, DeviceProfile};
pub use estimate::{
    estimate_b2sr_bmv, estimate_csr_spmv, estimate_time_ms, speedup_estimate, KernelEstimate,
};
pub use traffic::{b2sr_bmv_traffic, compare_traffic, csr_spmv_traffic, B2srLayout, MemoryTraffic};
