//! Bandwidth-bound time estimates derived from the traffic model.
//!
//! Sparse kernels on GPUs are memory-bound, so a first-order time estimate is
//! `bytes_loaded / effective_bandwidth`, with a small compute term for the
//! bit intrinsics scaled by the device's `bit_intrinsic_throughput` (Volta's
//! explicit warp synchronisation makes the bit kernels slightly slower per
//! instruction than Pascal — the effect the paper observes in §VI-E).  These
//! estimates are *not* a replacement for the measured wall-clock numbers of
//! the benchmark harness; they reproduce the architecture-dependent trends
//! (which device helps which kernel) that the CPU substrate cannot show.
//!
//! Like the traffic model, the B2SR estimates take a [`B2srLayout`] so they
//! can be computed for a *hypothetical* conversion — this is what powers the
//! automatic format selection in `bitgblas-core`.

use bitgblas_sparse::Csr;

use crate::device::DeviceProfile;
use crate::traffic::{b2sr_bmv_traffic, csr_spmv_traffic, B2srLayout, MemoryTraffic};

/// An analytic estimate for one kernel on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEstimate {
    /// Modelled memory traffic.
    pub traffic: MemoryTraffic,
    /// Memory time in milliseconds (`bytes / bandwidth`).
    pub memory_time_ms: f64,
    /// Compute time in milliseconds (per-element op cost / SM throughput).
    pub compute_time_ms: f64,
    /// Total estimate: max of the two (perfect overlap assumption).
    pub total_time_ms: f64,
}

/// Seconds per elementary warp operation, calibrated so that the absolute
/// numbers land in the same millisecond range as the paper's tables; only
/// ratios between kernels/devices are meaningful.
const OP_TIME_NS: f64 = 0.5;

fn make_estimate(
    traffic: MemoryTraffic,
    ops: f64,
    profile: &DeviceProfile,
    is_bit: bool,
) -> KernelEstimate {
    let memory_time_ms = traffic.bytes_loaded as f64 / (profile.mem_bandwidth_gbps * 1e9) * 1e3;
    let throughput = profile.sm_count as f64
        * if is_bit {
            profile.bit_intrinsic_throughput
        } else {
            1.0
        };
    let compute_time_ms = ops * OP_TIME_NS * 1e-6 / throughput;
    let total_time_ms = memory_time_ms.max(compute_time_ms);
    KernelEstimate {
        traffic,
        memory_time_ms,
        compute_time_ms,
        total_time_ms,
    }
}

/// Estimate the time of one float CSR SpMV on `profile`.
pub fn estimate_csr_spmv(csr: &Csr, profile: &DeviceProfile) -> KernelEstimate {
    let traffic = csr_spmv_traffic(csr, profile);
    // One fused multiply-add per stored entry.
    make_estimate(traffic, csr.nnz() as f64, profile, false)
}

/// Estimate the time of one B2SR BMV with the given (real or hypothetical)
/// tile layout on `profile`.
pub fn estimate_b2sr_bmv(layout: &B2srLayout, profile: &DeviceProfile) -> KernelEstimate {
    let traffic = b2sr_bmv_traffic(layout, profile);
    // One AND+popcount per packed word of every non-empty tile.
    let ops = layout.n_tiles() as f64 * layout.tile_dim() as f64;
    make_estimate(traffic, ops, profile, true)
}

/// Convenience: estimated total time in milliseconds.
pub fn estimate_time_ms(traffic: &MemoryTraffic, profile: &DeviceProfile) -> f64 {
    traffic.bytes_loaded as f64 / (profile.mem_bandwidth_gbps * 1e9) * 1e3
}

/// The modelled speedup of the B2SR BMV over the CSR SpMV baseline on one
/// device — the analytic counterpart of one point of Figures 6/7.
pub fn speedup_estimate(csr: &Csr, layout: &B2srLayout, profile: &DeviceProfile) -> f64 {
    let base = estimate_csr_spmv(csr, profile);
    let bit = estimate_b2sr_bmv(layout, profile);
    if bit.total_time_ms == 0.0 {
        f64::INFINITY
    } else {
        base.total_time_ms / bit.total_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{pascal_gtx1080, volta_titanv};
    use bitgblas_sparse::Coo;

    fn banded(n: usize, bw: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in r.saturating_sub(bw)..(r + bw + 1).min(n) {
                coo.push_edge(r, c).unwrap();
            }
        }
        coo.to_binary_csr()
    }

    #[test]
    fn estimates_are_positive_and_consistent() {
        let a = banded(2048, 3);
        let l = B2srLayout::from_csr(&a, 8);
        for profile in [pascal_gtx1080(), volta_titanv()] {
            let base = estimate_csr_spmv(&a, &profile);
            let bit = estimate_b2sr_bmv(&l, &profile);
            assert!(base.total_time_ms > 0.0);
            assert!(bit.total_time_ms > 0.0);
            assert!(base.total_time_ms >= base.memory_time_ms.max(base.compute_time_ms) - 1e-12);
            assert_eq!(
                estimate_time_ms(&base.traffic, &profile),
                base.memory_time_ms
            );
        }
    }

    #[test]
    fn bit_kernel_is_modelled_faster_on_compressible_matrices() {
        let a = banded(4096, 3);
        let l = B2srLayout::from_csr(&a, 8);
        for profile in [pascal_gtx1080(), volta_titanv()] {
            let s = speedup_estimate(&a, &l, &profile);
            assert!(s > 1.0, "{}: modelled speedup {s}", profile.name);
        }
    }

    #[test]
    fn volta_narrows_the_modelled_gap() {
        // The paper observes smaller B2SR speedups on Volta because the
        // baseline benefits from the higher bandwidth while the bit kernels
        // pay for explicit warp synchronisation.  The model reproduces the
        // direction of that effect.
        let a = banded(4096, 3);
        let l = B2srLayout::from_csr(&a, 8);
        let s_pascal = speedup_estimate(&a, &l, &pascal_gtx1080());
        let s_volta = speedup_estimate(&a, &l, &volta_titanv());
        assert!(
            s_volta <= s_pascal * 1.05,
            "volta speedup {s_volta} should not exceed pascal {s_pascal}"
        );
    }

    #[test]
    fn baseline_absolute_time_drops_on_volta() {
        let a = banded(4096, 3);
        let t_pascal = estimate_csr_spmv(&a, &pascal_gtx1080()).total_time_ms;
        let t_volta = estimate_csr_spmv(&a, &volta_titanv()).total_time_ms;
        assert!(
            t_volta < t_pascal,
            "higher bandwidth must lower the baseline estimate"
        );
    }
}
