//! Memory-transaction modelling of the SpMV baseline and the BMV kernel.
//!
//! The model walks the access streams the two kernels generate:
//!
//! * **CSR SpMV** (the cuSPARSE/GraphBLAST baseline): stream `RowPtr`,
//!   `ColInd` and the 4-byte float values, plus a gather of `x[ColInd[k]]`
//!   for every stored entry — the gathers are the irregular part;
//! * **B2SR BMV**: stream `TileRowPtr`, `TileColInd` and the packed
//!   `BitTiles`, plus one contiguous vector-segment load of `tile_dim`
//!   entries per non-empty tile.
//!
//! Sequential streams are coalesced into `transaction_bytes`-wide
//! transactions; the vector gathers go through the L1 cache simulator to
//! estimate the hit rate, mirroring the counters the paper reports in §VI-C.

use serde::{Deserialize, Serialize};

use bitgblas_core::B2srMatrix;
use bitgblas_sparse::Csr;

use crate::cache::CacheSim;
use crate::device::DeviceProfile;

/// Aggregate memory traffic of one kernel invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryTraffic {
    /// Total bytes read from global memory (after L1 filtering of gathers).
    pub bytes_loaded: u64,
    /// Number of global-memory load transactions.
    pub load_transactions: u64,
    /// Estimated L1 hit rate of the vector accesses, in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// Bytes of the matrix representation streamed (index arrays + values or
    /// bit tiles).
    pub matrix_bytes: u64,
    /// Bytes of vector data requested (before caching).
    pub vector_bytes_requested: u64,
}

/// Number of transactions needed to stream `bytes` sequentially.
fn stream_transactions(bytes: u64, transaction_bytes: usize) -> u64 {
    bytes.div_ceil(transaction_bytes as u64)
}

/// Model the memory traffic of one full-precision CSR SpMV (`y = A·x`).
pub fn csr_spmv_traffic(csr: &Csr, profile: &DeviceProfile) -> MemoryTraffic {
    let nnz = csr.nnz() as u64;
    let nrows = csr.nrows() as u64;

    // Streamed matrix data: RowPtr (4 B per row + 1), ColInd (4 B) and float
    // values (4 B) per stored entry.
    let matrix_bytes = 4 * (nrows + 1) + 8 * nnz;
    let mut transactions = stream_transactions(matrix_bytes, profile.transaction_bytes);

    // Vector gathers: one 4-byte access per stored entry at x[col].  The L1
    // filters repeated accesses; every miss costs a full transaction.
    let mut l1 = CacheSim::l1(profile.l1_per_sm_kb);
    let mut gather_misses = 0u64;
    for &c in csr.colind() {
        if !l1.access(c as u64 * 4) {
            gather_misses += 1;
        }
    }
    transactions += gather_misses;
    let vector_bytes_requested = 4 * nnz;
    let bytes_loaded = matrix_bytes + gather_misses * profile.transaction_bytes as u64;

    MemoryTraffic {
        bytes_loaded,
        load_transactions: transactions,
        l1_hit_rate: l1.hit_rate(),
        matrix_bytes,
        vector_bytes_requested,
    }
}

/// Model the memory traffic of one B2SR BMV (`bmv_bin_full_full` shape: the
/// matrix is bit-packed, the vector is full precision and loaded one
/// `tile_dim`-entry segment per non-empty tile).
pub fn b2sr_bmv_traffic(b2sr: &B2srMatrix, profile: &DeviceProfile) -> MemoryTraffic {
    let n_tiles = b2sr.n_tiles() as u64;
    let dim = b2sr.tile_size().dim() as u64;
    let tile_bytes = b2sr.tile_size().bytes_per_tile() as u64;
    let n_tile_rows = (b2sr.nrows() as u64).div_ceil(dim);

    // Streamed matrix data: TileRowPtr, TileColInd (4 B each) and the packed
    // tiles.
    let matrix_bytes = 4 * (n_tile_rows + 1) + 4 * n_tiles + tile_bytes * n_tiles;
    let mut transactions = stream_transactions(matrix_bytes, profile.transaction_bytes);

    // Vector segments: one contiguous load of `dim` floats per non-empty
    // tile, at the tile column's offset.  Re-loads of the same segment are
    // filtered by the L1.
    let mut l1 = CacheSim::l1(profile.l1_per_sm_kb);
    let mut segment_misses = 0u64;
    // Walk tiles in storage order (tile columns within each tile row).
    let tile_cols = collect_tile_cols(b2sr);
    for &tc in &tile_cols {
        let addr = tc as u64 * dim * 4;
        let before = l1.misses();
        l1.access_range(addr, (dim * 4) as usize);
        segment_misses += l1.misses() - before;
    }
    transactions += segment_misses;
    let vector_bytes_requested = n_tiles * dim * 4;
    let bytes_loaded = matrix_bytes + segment_misses * profile.transaction_bytes as u64;

    MemoryTraffic {
        bytes_loaded,
        load_transactions: transactions,
        l1_hit_rate: l1.hit_rate(),
        matrix_bytes,
        vector_bytes_requested,
    }
}

/// The tile-column index of every non-empty tile, in storage order.
fn collect_tile_cols(b2sr: &B2srMatrix) -> Vec<usize> {
    match b2sr {
        B2srMatrix::B4(m) => m.tile_colind().to_vec(),
        B2srMatrix::B8(m) => m.tile_colind().to_vec(),
        B2srMatrix::B16(m) => m.tile_colind().to_vec(),
        B2srMatrix::B32(m) => m.tile_colind().to_vec(),
    }
}

/// The §VI-C style comparison of the two kernels on one matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficComparison {
    /// Traffic of the CSR float baseline.
    pub csr: MemoryTraffic,
    /// Traffic of the B2SR bit kernel.
    pub b2sr: MemoryTraffic,
    /// `csr.load_transactions / b2sr.load_transactions`.
    pub transaction_reduction: f64,
    /// Increase of the L1 hit rate (percentage points).
    pub l1_hit_rate_gain: f64,
}

/// Compare the two kernels' modelled traffic on the same matrix.
pub fn compare_traffic(csr: &Csr, b2sr: &B2srMatrix, profile: &DeviceProfile) -> TrafficComparison {
    let c = csr_spmv_traffic(csr, profile);
    let b = b2sr_bmv_traffic(b2sr, profile);
    let transaction_reduction = if b.load_transactions == 0 {
        f64::INFINITY
    } else {
        c.load_transactions as f64 / b.load_transactions as f64
    };
    let l1_hit_rate_gain = (b.l1_hit_rate - c.l1_hit_rate) * 100.0;
    TrafficComparison { csr: c, b2sr: b, transaction_reduction, l1_hit_rate_gain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::pascal_gtx1080;
    use bitgblas_core::TileSize;
    use bitgblas_sparse::Coo;

    fn banded(n: usize, bw: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in r.saturating_sub(bw)..(r + bw + 1).min(n) {
                coo.push_edge(r, c).unwrap();
            }
        }
        coo.to_binary_csr()
    }

    #[test]
    fn csr_traffic_scales_with_nnz() {
        let p = pascal_gtx1080();
        let small = csr_spmv_traffic(&banded(256, 2), &p);
        let large = csr_spmv_traffic(&banded(1024, 2), &p);
        assert!(large.bytes_loaded > small.bytes_loaded);
        assert!(large.load_transactions > small.load_transactions);
        assert!(small.l1_hit_rate > 0.0, "banded gathers have locality");
    }

    #[test]
    fn b2sr_traffic_is_smaller_on_banded_matrices() {
        let p = pascal_gtx1080();
        let a = banded(2048, 3);
        let b = B2srMatrix::from_csr(&a, TileSize::S8);
        let cmp = compare_traffic(&a, &b, &p);
        assert!(
            cmp.transaction_reduction > 1.5,
            "expected a clear transaction reduction, got {}",
            cmp.transaction_reduction
        );
        assert!(cmp.b2sr.matrix_bytes < cmp.csr.matrix_bytes);
    }

    #[test]
    fn block_dense_matrix_reproduces_vi_c_transaction_reduction() {
        // §VI-C reports a ~4× reduction in global load transactions for the
        // block-dense mycielskian8; a dense block pattern shows the same
        // effect in the model, and the reported rates stay within [0, 1].
        let p = pascal_gtx1080();
        let n = 256usize;
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in (r / 32) * 32..((r / 32) * 32 + 32).min(n) {
                if r != c {
                    coo.push_edge(r, c).unwrap();
                }
            }
        }
        let a = coo.to_binary_csr();
        let b = B2srMatrix::from_csr(&a, TileSize::S32);
        let cmp = compare_traffic(&a, &b, &p);
        assert!(
            cmp.transaction_reduction > 3.0,
            "expected a strong reduction on dense blocks, got {}",
            cmp.transaction_reduction
        );
        for rate in [cmp.csr.l1_hit_rate, cmp.b2sr.l1_hit_rate] {
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn empty_matrix_produces_minimal_traffic() {
        let p = pascal_gtx1080();
        let a = Csr::empty(64, 64);
        let t = csr_spmv_traffic(&a, &p);
        assert_eq!(t.vector_bytes_requested, 0);
        assert!(t.load_transactions > 0, "row pointer is still streamed");
        let b = B2srMatrix::from_csr(&a, TileSize::S8);
        let tb = b2sr_bmv_traffic(&b, &p);
        assert_eq!(tb.vector_bytes_requested, 0);
    }

    #[test]
    fn transaction_counts_use_device_width() {
        let mut narrow = pascal_gtx1080();
        narrow.transaction_bytes = 32;
        let wide = pascal_gtx1080();
        let a = banded(512, 2);
        let t_narrow = csr_spmv_traffic(&a, &narrow);
        let t_wide = csr_spmv_traffic(&a, &wide);
        assert!(t_narrow.load_transactions > t_wide.load_transactions);
    }
}
