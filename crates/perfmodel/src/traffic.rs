//! Memory-transaction modelling of the SpMV baseline and the BMV kernel.
//!
//! The model walks the access streams the two kernels generate:
//!
//! * **CSR SpMV** (the cuSPARSE/GraphBLAST baseline): stream `RowPtr`,
//!   `ColInd` and the 4-byte float values, plus a gather of `x[ColInd[k]]`
//!   for every stored entry — the gathers are the irregular part;
//! * **B2SR BMV**: stream `TileRowPtr`, `TileColInd` and the packed
//!   `BitTiles`, plus one contiguous vector-segment load of `tile_dim`
//!   entries per non-empty tile.
//!
//! Sequential streams are coalesced into `transaction_bytes`-wide
//! transactions; the vector gathers go through the L1 cache simulator to
//! estimate the hit rate, mirroring the counters the paper reports in §VI-C.
//!
//! The B2SR side of the model works on a [`B2srLayout`] — the upper-level
//! tile structure (dimensions plus the non-empty tile columns in storage
//! order) without the packed bits.  The layout is everything the traffic
//! model needs, it can be computed straight from a CSR matrix *without*
//! performing the conversion, and it keeps this crate independent of
//! `bitgblas-core` so the core's automatic format selection can call into
//! the model.

use bitgblas_sparse::Csr;

use crate::cache::CacheSim;
use crate::device::DeviceProfile;

/// The upper-level structure of a B2SR matrix: everything the traffic model
/// needs to know about a (real or hypothetical) conversion, without the
/// packed tile payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct B2srLayout {
    nrows: usize,
    ncols: usize,
    tile_dim: usize,
    /// Tile-column index of every non-empty tile, in storage order
    /// (tile-row major, ascending tile column within a tile-row).
    tile_colind: Vec<usize>,
}

impl B2srLayout {
    /// Assemble a layout from raw parts (used by `bitgblas-core` to describe
    /// an already-converted matrix).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        tile_dim: usize,
        tile_colind: Vec<usize>,
    ) -> Self {
        assert!(tile_dim > 0, "tile_dim must be positive");
        B2srLayout {
            nrows,
            ncols,
            tile_dim,
            tile_colind,
        }
    }

    /// Compute the layout a CSR→B2SR conversion with `tile_dim` tiles would
    /// produce, without converting: one pass over the nonzeros per tile-row.
    pub fn from_csr(csr: &Csr, tile_dim: usize) -> Self {
        assert!(tile_dim > 0, "tile_dim must be positive");
        let nrows = csr.nrows();
        let n_tile_rows = nrows.div_ceil(tile_dim);
        let mut tile_colind = Vec::new();
        let mut bucket: Vec<usize> = Vec::new();
        for tr in 0..n_tile_rows {
            bucket.clear();
            for r in tr * tile_dim..((tr + 1) * tile_dim).min(nrows) {
                bucket.extend(csr.row(r).0.iter().map(|&c| c / tile_dim));
            }
            bucket.sort_unstable();
            bucket.dedup();
            tile_colind.extend_from_slice(&bucket);
        }
        B2srLayout {
            nrows,
            ncols: csr.ncols(),
            tile_dim,
            tile_colind,
        }
    }

    /// Number of rows of the represented matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the represented matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The tile dimension.
    pub fn tile_dim(&self) -> usize {
        self.tile_dim
    }

    /// Number of non-empty tiles.
    pub fn n_tiles(&self) -> usize {
        self.tile_colind.len()
    }

    /// Number of tile rows.
    pub fn n_tile_rows(&self) -> usize {
        self.nrows.div_ceil(self.tile_dim)
    }

    /// The tile-column index of every non-empty tile, in storage order.
    pub fn tile_colind(&self) -> &[usize] {
        &self.tile_colind
    }

    /// Bytes of one packed tile row (the Table-I packing word: `u8` up to
    /// 8-wide tiles, `u16` up to 16, `u32` up to 32, wider as needed).
    pub fn bytes_per_tile_row(&self) -> usize {
        (self.tile_dim.next_power_of_two().max(8) / 8).max(1)
    }

    /// Bytes of one whole packed tile.
    pub fn bytes_per_tile(&self) -> usize {
        self.tile_dim * self.bytes_per_tile_row()
    }

    /// Storage footprint of the represented B2SR matrix in bytes (4-byte
    /// integers for the two index arrays plus the packed tiles).
    pub fn storage_bytes(&self) -> usize {
        4 * (self.n_tile_rows() + 1 + self.n_tiles()) + self.bytes_per_tile() * self.n_tiles()
    }
}

/// Aggregate memory traffic of one kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryTraffic {
    /// Total bytes read from global memory (after L1 filtering of gathers).
    pub bytes_loaded: u64,
    /// Number of global-memory load transactions.
    pub load_transactions: u64,
    /// Estimated L1 hit rate of the vector accesses, in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// Bytes of the matrix representation streamed (index arrays + values or
    /// bit tiles).
    pub matrix_bytes: u64,
    /// Bytes of vector data requested (before caching).
    pub vector_bytes_requested: u64,
}

/// Number of transactions needed to stream `bytes` sequentially.
fn stream_transactions(bytes: u64, transaction_bytes: usize) -> u64 {
    bytes.div_ceil(transaction_bytes as u64)
}

/// Model the memory traffic of one full-precision CSR SpMV (`y = A·x`).
pub fn csr_spmv_traffic(csr: &Csr, profile: &DeviceProfile) -> MemoryTraffic {
    let nnz = csr.nnz() as u64;
    let nrows = csr.nrows() as u64;

    // Streamed matrix data: RowPtr (4 B per row + 1), ColInd (4 B) and float
    // values (4 B) per stored entry.
    let matrix_bytes = 4 * (nrows + 1) + 8 * nnz;
    let mut transactions = stream_transactions(matrix_bytes, profile.transaction_bytes);

    // Vector gathers: one 4-byte access per stored entry at x[col].  The L1
    // filters repeated accesses; every miss costs a full transaction.
    let mut l1 = CacheSim::l1(profile.l1_per_sm_kb);
    let mut gather_misses = 0u64;
    for &c in csr.colind() {
        if !l1.access(c as u64 * 4) {
            gather_misses += 1;
        }
    }
    transactions += gather_misses;
    let vector_bytes_requested = 4 * nnz;
    let bytes_loaded = matrix_bytes + gather_misses * profile.transaction_bytes as u64;

    MemoryTraffic {
        bytes_loaded,
        load_transactions: transactions,
        l1_hit_rate: l1.hit_rate(),
        matrix_bytes,
        vector_bytes_requested,
    }
}

/// Model the memory traffic of one B2SR BMV (`bmv_bin_full_full` shape: the
/// matrix is bit-packed, the vector is full precision and loaded one
/// `tile_dim`-entry segment per non-empty tile).
pub fn b2sr_bmv_traffic(layout: &B2srLayout, profile: &DeviceProfile) -> MemoryTraffic {
    let n_tiles = layout.n_tiles() as u64;
    let dim = layout.tile_dim() as u64;
    let tile_bytes = layout.bytes_per_tile() as u64;
    let n_tile_rows = layout.n_tile_rows() as u64;

    // Streamed matrix data: TileRowPtr, TileColInd (4 B each) and the packed
    // tiles.
    let matrix_bytes = 4 * (n_tile_rows + 1) + 4 * n_tiles + tile_bytes * n_tiles;
    let mut transactions = stream_transactions(matrix_bytes, profile.transaction_bytes);

    // Vector segments: one contiguous load of `dim` floats per non-empty
    // tile, at the tile column's offset.  Re-loads of the same segment are
    // filtered by the L1.
    let mut l1 = CacheSim::l1(profile.l1_per_sm_kb);
    let mut segment_misses = 0u64;
    // Walk tiles in storage order (tile columns within each tile row).
    for &tc in layout.tile_colind() {
        let addr = tc as u64 * dim * 4;
        let before = l1.misses();
        l1.access_range(addr, (dim * 4) as usize);
        segment_misses += l1.misses() - before;
    }
    transactions += segment_misses;
    let vector_bytes_requested = n_tiles * dim * 4;
    let bytes_loaded = matrix_bytes + segment_misses * profile.transaction_bytes as u64;

    MemoryTraffic {
        bytes_loaded,
        load_transactions: transactions,
        l1_hit_rate: l1.hit_rate(),
        matrix_bytes,
        vector_bytes_requested,
    }
}

/// The §VI-C style comparison of the two kernels on one matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficComparison {
    /// Traffic of the CSR float baseline.
    pub csr: MemoryTraffic,
    /// Traffic of the B2SR bit kernel.
    pub b2sr: MemoryTraffic,
    /// `csr.load_transactions / b2sr.load_transactions`.
    pub transaction_reduction: f64,
    /// Increase of the L1 hit rate (percentage points).
    pub l1_hit_rate_gain: f64,
}

/// Compare the two kernels' modelled traffic on the same matrix.
pub fn compare_traffic(
    csr: &Csr,
    layout: &B2srLayout,
    profile: &DeviceProfile,
) -> TrafficComparison {
    let c = csr_spmv_traffic(csr, profile);
    let b = b2sr_bmv_traffic(layout, profile);
    let transaction_reduction = if b.load_transactions == 0 {
        f64::INFINITY
    } else {
        c.load_transactions as f64 / b.load_transactions as f64
    };
    let l1_hit_rate_gain = (b.l1_hit_rate - c.l1_hit_rate) * 100.0;
    TrafficComparison {
        csr: c,
        b2sr: b,
        transaction_reduction,
        l1_hit_rate_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::pascal_gtx1080;
    use bitgblas_sparse::Coo;

    fn banded(n: usize, bw: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in r.saturating_sub(bw)..(r + bw + 1).min(n) {
                coo.push_edge(r, c).unwrap();
            }
        }
        coo.to_binary_csr()
    }

    #[test]
    fn layout_matches_hand_computed_tiles() {
        // 8x8 identity with tile_dim 4: two diagonal tiles.
        let mut coo = Coo::new(8, 8);
        for i in 0..8 {
            coo.push_edge(i, i).unwrap();
        }
        let csr = coo.to_binary_csr();
        let l = B2srLayout::from_csr(&csr, 4);
        assert_eq!(l.n_tiles(), 2);
        assert_eq!(l.tile_colind(), &[0, 1]);
        assert_eq!(l.n_tile_rows(), 2);
        assert_eq!(l.bytes_per_tile_row(), 1);
        assert_eq!(l.bytes_per_tile(), 4);
        // TileRowPtr (3) + TileColInd (2) ints, plus 2 tiles of 4 bytes.
        assert_eq!(l.storage_bytes(), 4 * 5 + 8);
    }

    #[test]
    fn layout_word_widths_follow_table1() {
        let csr = banded(64, 1);
        for (dim, bytes) in [(4usize, 1usize), (8, 1), (16, 2), (32, 4)] {
            let l = B2srLayout::from_csr(&csr, dim);
            assert_eq!(l.bytes_per_tile_row(), bytes, "dim {dim}");
        }
    }

    #[test]
    fn csr_traffic_scales_with_nnz() {
        let p = pascal_gtx1080();
        let small = csr_spmv_traffic(&banded(256, 2), &p);
        let large = csr_spmv_traffic(&banded(1024, 2), &p);
        assert!(large.bytes_loaded > small.bytes_loaded);
        assert!(large.load_transactions > small.load_transactions);
        assert!(small.l1_hit_rate > 0.0, "banded gathers have locality");
    }

    #[test]
    fn b2sr_traffic_is_smaller_on_banded_matrices() {
        let p = pascal_gtx1080();
        let a = banded(2048, 3);
        let l = B2srLayout::from_csr(&a, 8);
        let cmp = compare_traffic(&a, &l, &p);
        assert!(
            cmp.transaction_reduction > 1.5,
            "expected a clear transaction reduction, got {}",
            cmp.transaction_reduction
        );
        assert!(cmp.b2sr.matrix_bytes < cmp.csr.matrix_bytes);
    }

    #[test]
    fn block_dense_matrix_reproduces_vi_c_transaction_reduction() {
        // §VI-C reports a ~4× reduction in global load transactions for the
        // block-dense mycielskian8; a dense block pattern shows the same
        // effect in the model, and the reported rates stay within [0, 1].
        let p = pascal_gtx1080();
        let n = 256usize;
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in (r / 32) * 32..((r / 32) * 32 + 32).min(n) {
                if r != c {
                    coo.push_edge(r, c).unwrap();
                }
            }
        }
        let a = coo.to_binary_csr();
        let l = B2srLayout::from_csr(&a, 32);
        let cmp = compare_traffic(&a, &l, &p);
        assert!(
            cmp.transaction_reduction > 3.0,
            "expected a strong reduction on dense blocks, got {}",
            cmp.transaction_reduction
        );
        for rate in [cmp.csr.l1_hit_rate, cmp.b2sr.l1_hit_rate] {
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn empty_matrix_produces_minimal_traffic() {
        let p = pascal_gtx1080();
        let a = Csr::empty(64, 64);
        let t = csr_spmv_traffic(&a, &p);
        assert_eq!(t.vector_bytes_requested, 0);
        assert!(t.load_transactions > 0, "row pointer is still streamed");
        let l = B2srLayout::from_csr(&a, 8);
        assert_eq!(l.n_tiles(), 0);
        let tb = b2sr_bmv_traffic(&l, &p);
        assert_eq!(tb.vector_bytes_requested, 0);
    }

    #[test]
    fn transaction_counts_use_device_width() {
        let mut narrow = pascal_gtx1080();
        narrow.transaction_bytes = 32;
        let wide = pascal_gtx1080();
        let a = banded(512, 2);
        let t_narrow = csr_spmv_traffic(&a, &narrow);
        let t_wide = csr_spmv_traffic(&a, &wide);
        assert!(t_narrow.load_transactions > t_wide.load_transactions);
    }
}
