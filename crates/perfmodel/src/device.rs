//! GPU device profiles — Table VI of the paper.

/// The memory-hierarchy parameters of a GPU, as listed in Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name of the device.
    pub name: String,
    /// Architecture generation ("Pascal", "Volta", ...).
    pub architecture: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Shared memory per SM in KiB.
    pub shared_per_sm_kb: usize,
    /// Shared memory per thread block in KiB.
    pub shared_per_block_kb: usize,
    /// Device RAM in GiB.
    pub dram_gb: usize,
    /// Global-memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// L1 cache per SM in KiB.
    pub l1_per_sm_kb: usize,
    /// Total L2 cache in KiB.
    pub l2_kb: usize,
    /// Size of a global-memory transaction in bytes (128-byte cache lines on
    /// both architectures).
    pub transaction_bytes: usize,
    /// Relative per-SM throughput scale of the bit-intrinsic path
    /// (1.0 = Pascal).  Volta replaces the implicit warp-synchronous
    /// `__shfl()`/`__ballot()` with explicitly synchronising `_sync`
    /// variants, so the bit kernels do not gain from its extra SMs; the value
    /// is calibrated so that `sm_count × bit_intrinsic_throughput` is equal
    /// on both devices, reproducing the paper's observation (§VI-E) that
    /// Bit-GraphBLAS runs no faster — sometimes slightly slower — on Volta.
    pub bit_intrinsic_throughput: f64,
}

/// The Pascal GTX 1080 profile from Table VI.
pub fn pascal_gtx1080() -> DeviceProfile {
    DeviceProfile {
        name: "GTX 1080".to_string(),
        architecture: "Pascal".to_string(),
        sm_count: 20,
        shared_per_sm_kb: 64,
        shared_per_block_kb: 48,
        dram_gb: 8,
        mem_bandwidth_gbps: 320.0,
        l1_per_sm_kb: 48,
        l2_kb: 2048,
        transaction_bytes: 128,
        bit_intrinsic_throughput: 1.0,
    }
}

/// The Volta Titan V profile from Table VI.
pub fn volta_titanv() -> DeviceProfile {
    DeviceProfile {
        name: "TITAN V".to_string(),
        architecture: "Volta".to_string(),
        sm_count: 80,
        shared_per_sm_kb: 96,
        shared_per_block_kb: 96,
        dram_gb: 12,
        mem_bandwidth_gbps: 653.0,
        l1_per_sm_kb: 96,
        l2_kb: 4608,
        transaction_bytes: 128,
        // __shfl_sync / __ballot_sync carry an explicit synchronisation cost
        // on Volta that the non-synchronising Pascal variants did not; the
        // calibration keeps 80 SMs × 0.25 = Pascal's 20 SMs × 1.0.
        bit_intrinsic_throughput: 0.25,
    }
}

/// Look a profile up by a case-insensitive name ("pascal", "volta",
/// "gtx1080", "titanv").
pub fn profile_by_name(name: &str) -> Option<DeviceProfile> {
    match name.to_ascii_lowercase().as_str() {
        "pascal" | "gtx1080" | "gtx 1080" => Some(pascal_gtx1080()),
        "volta" | "titanv" | "titan v" => Some(volta_titanv()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table6() {
        let p = pascal_gtx1080();
        assert_eq!(p.sm_count, 20);
        assert_eq!(p.mem_bandwidth_gbps, 320.0);
        assert_eq!(p.l1_per_sm_kb, 48);
        assert_eq!(p.l2_kb, 2048);

        let v = volta_titanv();
        assert_eq!(v.sm_count, 80);
        assert_eq!(v.mem_bandwidth_gbps, 653.0);
        assert_eq!(v.l1_per_sm_kb, 96);
        assert_eq!(v.l2_kb, 4608);
        assert!(v.mem_bandwidth_gbps > p.mem_bandwidth_gbps);
        assert!(v.bit_intrinsic_throughput < p.bit_intrinsic_throughput);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(profile_by_name("pascal").unwrap().name, "GTX 1080");
        assert_eq!(profile_by_name("VOLTA").unwrap().name, "TITAN V");
        assert_eq!(profile_by_name("titanv").unwrap().architecture, "Volta");
        assert!(profile_by_name("hopper").is_none());
    }

    #[test]
    fn profiles_are_cloneable_value_types() {
        let p = pascal_gtx1080();
        let q = p.clone();
        assert_eq!(p, q);
    }
}
