//! A small set-associative cache simulator.
//!
//! Used to estimate L1 hit rates of the vector-gather streams of the SpMV /
//! BMV kernels: the simulator is fed the sequence of byte addresses a kernel
//! touches and reports hits and misses at cache-line granularity.  It models
//! a single SM's L1 (the paper's §VI-C numbers are per-kernel aggregate hit
//! rates), with LRU replacement within each set.

/// A set-associative cache with LRU replacement, tracking only tags.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: usize,
    n_sets: usize,
    ways: usize,
    /// `sets[s]` holds up to `ways` line tags, most recently used last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a cache of `capacity_bytes` with the given line size and
    /// associativity.  Capacity is rounded down to a whole number of sets.
    ///
    /// # Panics
    /// Panics if any parameter is zero or the capacity is smaller than one
    /// way of lines.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(
            capacity_bytes > 0 && line_bytes > 0 && ways > 0,
            "cache parameters must be positive"
        );
        let n_lines = capacity_bytes / line_bytes;
        assert!(
            n_lines >= ways,
            "cache must hold at least one set of {ways} ways"
        );
        let n_sets = (n_lines / ways).max(1);
        CacheSim {
            line_bytes,
            n_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); n_sets],
            hits: 0,
            misses: 0,
        }
    }

    /// A cache shaped like one SM's L1 (128-byte lines, 4-way).
    pub fn l1(capacity_kb: usize) -> Self {
        CacheSim::new(capacity_kb * 1024, 128, 4)
    }

    /// Access one byte address; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes as u64;
        let set_idx = (line % self.n_sets as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            let tag = set.remove(pos);
            set.push(tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.ways {
                set.remove(0); // evict LRU
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Access a contiguous byte range, one access per touched cache line.
    pub fn access_range(&mut self, addr: u64, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let first = addr / self.line_bytes as u64;
        let last = (addr + bytes as u64 - 1) / self.line_bytes as u64;
        for line in first..=last {
            self.access(line * self.line_bytes as u64);
        }
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset the statistics but keep the cache contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(1024, 64, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63), "same line");
        assert!(!c.access(64), "next line misses first");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 ways, 1 set: capacity 2 lines of 64B.
        let mut c = CacheSim::new(128, 64, 2);
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(128); // line 2 evicts line 0
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(128), "line 2 still resident");
    }

    #[test]
    fn streaming_larger_than_cache_never_hits() {
        let mut c = CacheSim::l1(16); // 16 KiB
        for i in 0..10_000u64 {
            c.access(i * 128);
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = CacheSim::l1(48);
        // 4 KiB working set accessed repeatedly fits easily.
        for _round in 0..10 {
            for i in 0..32u64 {
                c.access(i * 128);
            }
        }
        assert!(c.hit_rate() > 0.85, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = CacheSim::new(4096, 128, 4);
        c.access_range(0, 512); // 4 lines
        assert_eq!(c.misses(), 4);
        c.access_range(0, 512);
        assert_eq!(c.hits(), 4);
        c.access_range(100, 0);
        assert_eq!(c.hits() + c.misses(), 8);
    }

    #[test]
    fn reset_keeps_contents() {
        let mut c = CacheSim::new(1024, 128, 2);
        c.access(0);
        c.reset_stats();
        assert_eq!(c.misses(), 0);
        assert!(c.access(0), "content survived the stats reset");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_panics() {
        let _ = CacheSim::new(0, 64, 2);
    }
}
