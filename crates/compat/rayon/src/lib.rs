//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! This workspace builds in an environment without crates.io access, so this
//! crate provides the (small) subset of rayon's API the workspace actually
//! uses, implemented on `std::thread::scope`:
//!
//! * `slice.par_iter_mut().enumerate().for_each(..)`
//! * `slice.par_chunks_mut(n).enumerate().for_each(..)`
//! * `range.into_par_iter().map(..).collect() / .sum()`
//!
//! Work is split into one contiguous chunk per available core; small inputs
//! run sequentially to avoid thread-spawn overhead.  The observable behavior
//! (ordering of `collect`, exclusivity of `&mut` access) matches rayon.

use std::num::NonZeroUsize;

/// Everything a `use rayon::prelude::*` caller expects.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Inputs shorter than this run sequentially.
const SEQ_CUTOFF: usize = 2048;

fn n_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `len` items into per-thread contiguous ranges of near-equal size.
fn split_ranges(len: usize) -> Vec<std::ops::Range<usize>> {
    let threads = n_threads().min(len).max(1);
    let chunk = len.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk).min(len)..((t + 1) * chunk).min(len))
        .filter(|r| !r.is_empty())
        .collect()
}

// ---------------------------------------------------------------------------
// Mutable slice parallelism
// ---------------------------------------------------------------------------

/// Extension trait providing `par_iter_mut` / `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel exclusive iterator over the elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel exclusive iterator over `chunk_size`-sized chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel `&mut` iterator over a slice (created by `par_iter_mut`).
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair every element with its index.
    pub fn enumerate(self) -> EnumerateParIterMut<'a, T> {
        EnumerateParIterMut { slice: self.slice }
    }

    /// Apply `f` to every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, v)| f(v));
    }
}

/// Enumerated parallel `&mut` iterator over a slice.
pub struct EnumerateParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> EnumerateParIterMut<'_, T> {
    /// Apply `f` to every `(index, element)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let len = self.slice.len();
        if len < SEQ_CUTOFF || n_threads() == 1 {
            for (i, v) in self.slice.iter_mut().enumerate() {
                f((i, v));
            }
            return;
        }
        let ranges = split_ranges(len);
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = self.slice;
        let mut consumed = 0usize;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            parts.push((consumed, head));
            consumed += r.len();
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (offset, part) in parts {
                let f = &f;
                scope.spawn(move || {
                    for (i, v) in part.iter_mut().enumerate() {
                        f((offset + i, v));
                    }
                });
            }
        });
    }
}

/// Parallel `&mut` chunk iterator over a slice (created by `par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Apply `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated parallel `&mut` chunk iterator.
pub struct EnumerateParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumerateParChunksMut<'_, T> {
    /// Apply `f` to every `(chunk_index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = self.slice.len().div_ceil(self.chunk_size.max(1));
        if self.slice.len() < SEQ_CUTOFF || n_threads() == 1 {
            for (i, c) in self.slice.chunks_mut(self.chunk_size).enumerate() {
                f((i, c));
            }
            return;
        }
        // Assign whole chunks to threads so no chunk straddles two workers.
        let ranges = split_ranges(n_chunks);
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = self.slice;
        for r in &ranges {
            let items = ((r.end - r.start) * self.chunk_size).min(rest.len());
            let (head, tail) = rest.split_at_mut(items);
            parts.push((r.start, head));
            rest = tail;
        }
        std::thread::scope(|scope| {
            for (first_chunk, part) in parts {
                let f = &f;
                let chunk_size = self.chunk_size;
                scope.spawn(move || {
                    for (i, c) in part.chunks_mut(chunk_size).enumerate() {
                        f((first_chunk + i, c));
                    }
                });
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Index-range parallelism
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`,
/// implemented here for `Range<usize>` only — the shape the workspace uses).
pub trait IntoParallelIterator {
    /// The parallel iterator produced.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Map every index through `f`, preserving order.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<R, F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

/// The result of `ParRange::map`: evaluate lazily on `collect`/`sum`.
pub struct ParRangeMap<R, F> {
    range: std::ops::Range<usize>,
    f: F,
    _marker: std::marker::PhantomData<R>,
}

impl<R, F> ParRangeMap<R, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        if len < 64 || n_threads() == 1 {
            return (self.range).map(&self.f).collect();
        }
        let ranges = split_ranges(len);
        let mut pieces: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let f = &self.f;
                    let (lo, hi) = (start + r.start, start + r.end);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
                })
                .collect();
            for h in handles {
                pieces.push(h.join().expect("worker thread panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for p in pieces {
            out.extend(p);
        }
        out
    }

    /// Collect the mapped values in index order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }

    /// Sum the mapped values.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_visits_every_index_once() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn par_chunks_mut_chunk_indices_are_global() {
        let mut v = vec![0usize; 10_000];
        v.par_chunks_mut(8).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 8);
        }
    }

    #[test]
    fn range_map_collect_preserves_order_and_sum_agrees() {
        let v: Vec<usize> = (0..5000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v.len(), 5000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * i));
        let s: u64 = (0..5000usize).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(s, 4999 * 5000 / 2);
    }

    #[test]
    fn small_inputs_run_sequentially_but_correctly() {
        let mut v = vec![1i32; 7];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2; 7]);
        let out: Vec<i32> = (0..7usize).into_par_iter().map(|i| i as i32).collect();
        assert_eq!(out, (0..7).collect::<Vec<i32>>());
    }
}
