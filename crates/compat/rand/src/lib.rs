//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! Provides the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool, gen}`.
//! The generator is splitmix64 — deterministic per seed, which is all the
//! seeded corpus generators require (the real `StdRng` makes no cross-version
//! stability promise either).

use std::ops::Range;

/// RNG construction from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods available on every RNG.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `[range.start, range.end)`.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        uniform_f64(self.next_u64()) < p
    }

    /// A random value of `T` (uniform in `[0, 1)` for floats).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self.next_u64())
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Copy {
    /// Map 64 random bits into `[range.start, range.end)`.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(bits: u64, range: Range<$t>) -> $t {
                let span = (range.end - range.start) as u64;
                assert!(span > 0, "cannot sample from an empty range");
                range.start + (bits % span) as $t
            }
        }
    )*};
}
impl_uniform_int!(usize, u64, u32, i64, i32);

/// Types with a "standard" distribution (`rng.gen()`).
pub trait Standard {
    /// Produce a value from 64 random bits.
    fn standard(bits: u64) -> Self;
}

fn uniform_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) / ((1u64 << 53) as f64)
}

impl Standard for f64 {
    fn standard(bits: u64) -> f64 {
        uniform_f64(bits)
    }
}

impl Standard for f32 {
    fn standard(bits: u64) -> f32 {
        uniform_f64(bits) as f32
    }
}

impl Standard for bool {
    fn standard(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// The concrete RNG types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic RNG (splitmix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range should appear"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
