//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of criterion's API the workspace benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId` and `Bencher::iter` —
//! with a plain wall-clock measurement loop instead of criterion's
//! statistical machinery.  Each benchmark prints one line:
//! `group/function/parameter      median 1.234 ms  (n=10)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new<F: Into<String>, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self, group: &str) -> String {
        match (self.function.is_empty(), self.parameter.is_empty()) {
            (false, false) => format!("{group}/{}/{}", self.function, self.parameter),
            (false, true) => format!("{group}/{}", self.function),
            _ => format!("{group}/{}", self.parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: String::new(),
        }
    }
}

/// The measurement configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = id.into().render(&self.name);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into().render(&self.name);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot loop.
pub struct Bencher {
    /// Collected per-sample durations (one per `iter` batch).
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `f`, running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Choose an inner iteration count so one sample is measurable.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let inner = (budget_per_sample.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as usize;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            self.samples.push(start.elapsed() / inner as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
        measurement_time,
    };
    f(&mut bencher);
    let median = bencher.median();
    println!(
        "{label:<60} median {:>10.4} ms  (n={sample_size})",
        median.as_secs_f64() * 1e3
    );
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main()` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::new("sum", "1k"), |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("with_input", "x"), &41u64, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", "p").render("g"), "g/f/p");
        assert_eq!(BenchmarkId::from_parameter("p").render("g"), "g/p");
    }
}
