//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of proptest's API the workspace test-suites use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], the [`proptest!`] macro and the
//! `prop_assert*` macros.  Values are generated from a deterministic
//! splitmix64 stream (seed overridable via `PROPTEST_SEED`), so failures are
//! reproducible; there is no shrinking — the failing inputs are printed via
//! the assertion message instead.

use std::ops::Range;

/// Deterministic random stream handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A new stream from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range strategy");
        self.next_u64() % bound
    }
}

/// A generator of random values (proptest's core abstraction, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value from the random stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, u8, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive length specification for [`fn@vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy { element, size }
    }

    /// The strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-suite configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The seed each property starts from: `PROPTEST_SEED` env var, or a fixed
/// default so CI runs are reproducible.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB17_6B1A5)
}

/// The most commonly used items, for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` runs
/// `body` for many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Per-test deterministic seed: base seed + test-name hash.
                let name_hash: u64 = stringify!($name)
                    .bytes()
                    .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::seeded(
                        $crate::base_seed().wrapping_add(name_hash).wrapping_add(case * 0x9E3779B9),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::seeded(1);
        for _ in 0..200 {
            let n = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&n));
            let (a, b) = (0usize..n, 0usize..n).generate(&mut rng);
            assert!(a < n && b < n);
            let v = crate::collection::vec(0usize..7, 0usize..5).generate(&mut rng);
            assert!(v.len() < 5 && v.iter().all(|&x| x < 7));
            let w = crate::collection::vec(any::<bool>(), 4usize).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..20).prop_flat_map(|n| (0usize..n).prop_map(move |i| (n, i)));
        let mut rng = crate::TestRng::seeded(9);
        for _ in 0..100 {
            let (n, i) = strat.generate(&mut rng);
            assert!(i < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..50, flip in any::<bool>()) {
            prop_assert!(x < 50);
            let doubled = if flip { x * 2 } else { x };
            prop_assert_eq!(doubled % 2 == 0 || !flip, true);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_works(v in crate::collection::vec(0u64..5, 0usize..10)) {
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }
}
