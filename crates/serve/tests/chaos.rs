//! Chaos suite: deterministic fault injection against the serving stack.
//!
//! Every test drives a [`GraphService`] with a seeded [`FaultInjector`]
//! and a hand-driven virtual clock, and asserts the failure-model
//! invariants:
//!
//! * **exactly-once resolution** — every admitted ticket resolves exactly
//!   once, as a result or a typed error, never silently;
//! * **conservation** — at quiescence
//!   `enqueued == completed + failed + deadline_misses + shed`;
//! * **containment** — a poisoned lane fails alone: bisection completes
//!   the innocent batch-mates and charges at most `2·⌈log₂ k⌉` extra
//!   engine calls;
//! * **determinism** — no wall-clock reads anywhere in retry, backoff or
//!   breaker decisions, so a replay with the same seed observes the same
//!   faults; and with **no** faults the service is bit-identical to a
//!   fault-free one.

use std::sync::Arc;

use proptest::prelude::*;

use bitgblas_core::faultinject::{FailSpec, FaultAction, FaultInjector, FaultPlan, InjectedPanic};
use bitgblas_core::{Backend, Matrix, TileSize};
use bitgblas_datagen::generators;
use bitgblas_serve::{
    BreakerState, FailureReason, GraphService, Query, QueryError, QueryResult, SubmitError, Tick,
    Ticket,
};

/// Silence the default panic hook for injected panics only — a chaos run
/// catches hundreds of them by design, and each would otherwise print a
/// backtrace banner.  Genuine panics still report normally.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                default_hook(info);
            }
        }));
    });
}

fn graph() -> Matrix {
    Matrix::from_csr(
        &generators::erdos_renyi(60, 0.06, true, 5),
        Backend::Bit(TileSize::S8),
    )
}

// -- containment / bisection ------------------------------------------------

/// One poisoned lane in an 8-lane batch: the 7 innocents complete with
/// correct results, only the culprit gets the typed failure, and the
/// bisection search stays within its logarithmic cost bound.
#[test]
fn bisection_isolates_the_poison_lane() {
    quiet_injected_panics();
    let g = graph();
    let poison_source = 5usize;
    let plan = FaultPlan::new()
        .with(FailSpec::always("serve.lane", FaultAction::Panic).with_arg(poison_source));
    let inj = Arc::new(FaultInjector::new(11, plan));
    let mut svc = GraphService::builder(&g)
        .coalescing_window(10)
        .fault_injector(inj.clone())
        .build();

    let sources = [0usize, 1, 2, 3, 4, 5, 6, 7];
    let tickets: Vec<Ticket> = sources
        .iter()
        .map(|&s| svc.submit(Query::bfs(s), Tick(0), None).unwrap())
        .collect();
    let reports = svc.pump(Tick(10));
    assert_eq!(reports.len(), 1, "one batch dispatched");
    assert_eq!(reports[0].lanes, 8);

    for (&s, &t) in sources.iter().zip(&tickets) {
        let got = svc.take_result(t).expect("every lane resolved");
        if s == poison_source {
            assert_eq!(
                got,
                Err(QueryError::ExecutionFailed {
                    reason: FailureReason::Panicked
                })
            );
        } else {
            let QueryResult::Bfs { levels } = got.expect("innocent lane completes") else {
                panic!("wrong result kind");
            };
            assert_eq!(levels, bitgblas_algorithms::bfs(&g, s).levels);
        }
    }
    let s = svc.stats().snapshot();
    assert_eq!(s.completed, 7);
    assert_eq!(s.failed, 1);
    assert!(s.panics_contained >= 1);
    // Cost bound: ≤ 2·⌈log₂ 8⌉ = 6 extra engine calls.
    assert!(
        s.bisection_dispatches <= 6,
        "bisection cost {} exceeds 2·log₂(8)",
        s.bisection_dispatches
    );
    assert!(s.is_conserved());
    assert!(inj.counts().panics >= 1);
}

// -- retry / backoff --------------------------------------------------------

/// A transiently-failing batch requeues with exponential backoff on the
/// virtual clock and succeeds on the retry — no wall clock involved.
#[test]
fn transient_failure_retries_with_deterministic_backoff() {
    quiet_injected_panics();
    let g = graph();
    let plan = FaultPlan::new()
        .with(FailSpec::always("serve.batch", FaultAction::Transient).with_max_fires(1));
    let inj = Arc::new(FaultInjector::new(3, plan));
    let mut svc = GraphService::builder(&g)
        .coalescing_window(10)
        .retry(2, 8)
        .fault_injector(inj)
        .build();

    let a = svc.submit(Query::sssp(1), Tick(0), None).unwrap();
    let b = svc.submit(Query::sssp(2), Tick(0), None).unwrap();
    // First dispatch at the window close fails transiently; both lanes
    // requeue with not_before = 10 + 8·2⁰ = 18.
    let reports = svc.pump(Tick(10));
    assert_eq!(reports.len(), 1);
    assert!(svc.take_result(a).is_none(), "still pending (requeued)");
    assert_eq!(svc.pending_len(), 2);
    assert_eq!(
        svc.next_event_time(),
        Some(Tick(18)),
        "next event is the backoff expiry, not the stale window"
    );
    // Before the backoff elapses nothing dispatches.
    assert!(svc.pump(Tick(17)).is_empty());
    // At 18 the retry dispatches and succeeds.
    let reports = svc.pump(Tick(18));
    assert_eq!(reports.len(), 1);
    for t in [a, b] {
        let QueryResult::Sssp { .. } = svc.take_result(t).unwrap().unwrap() else {
            panic!("wrong result kind");
        };
    }
    let s = svc.stats().snapshot();
    assert_eq!(s.retries, 2);
    assert_eq!(s.completed, 2);
    assert_eq!(s.batches_dispatched, 2, "original dispatch plus one retry");
    assert!(s.is_conserved());
}

/// When every attempt fails transiently, the retry budget bounds the work
/// and the query resolves with the typed exhaustion error.
#[test]
fn retries_exhausted_is_a_typed_terminal_failure() {
    quiet_injected_panics();
    let g = graph();
    let plan = FaultPlan::new().with(FailSpec::always("serve.batch", FaultAction::Transient));
    let inj = Arc::new(FaultInjector::new(4, plan));
    let mut svc = GraphService::builder(&g)
        .coalescing_window(0)
        .retry(1, 4)
        .fault_injector(inj)
        .build();

    let t = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
    // flush drains through the whole retry budget in one call (backoff is
    // ignored on the end-of-stream drain; the attempts cap still applies,
    // which is what guarantees termination under a 100%-transient plan).
    svc.flush(Tick(0));
    assert!(svc.is_idle());
    assert_eq!(
        svc.take_result(t).unwrap(),
        Err(QueryError::ExecutionFailed {
            reason: FailureReason::RetriesExhausted { attempts: 2 }
        })
    );
    let s = svc.stats().snapshot();
    assert_eq!(s.failed, 1);
    assert_eq!(s.retries, 1);
    assert!(s.is_conserved());
}

/// A transient injected at a *core* dispatch fail point (inside the
/// planner) surfaces as a typed error, not a crash, and the service
/// retries it to completion — the typed-error path works end to end.
#[test]
fn core_dispatch_transient_surfaces_as_a_retry() {
    quiet_injected_panics();
    let g = graph();
    let plan = FaultPlan::new()
        .with(FailSpec::always("grb.mxm_dispatch", FaultAction::Transient).with_max_fires(1));
    let inj = Arc::new(FaultInjector::new(6, plan));
    let mut svc = GraphService::builder(&g)
        .coalescing_window(0)
        .retry(2, 4)
        .fault_injector(inj.clone())
        .build();

    let t = svc.submit(Query::bfs(3), Tick(0), None).unwrap();
    svc.flush(Tick(0));
    let QueryResult::Bfs { levels } = svc.take_result(t).unwrap().unwrap() else {
        panic!("wrong result kind");
    };
    assert_eq!(levels, bitgblas_algorithms::bfs(&g, 3).levels);
    let s = svc.stats().snapshot();
    assert_eq!(s.retries, 1);
    assert_eq!(inj.counts().transients, 1);
    assert!(s.is_conserved());
}

// -- circuit breaker --------------------------------------------------------

/// Repeated panics on one coalescing key trip the breaker: the queue is
/// shed with a typed error, new submissions fail fast, and after the
/// cooldown a successful probe re-closes the circuit.
#[test]
fn breaker_trips_sheds_and_recovers_through_a_probe() {
    quiet_injected_panics();
    let g = graph();
    let plan =
        FaultPlan::new().with(FailSpec::always("serve.lane", FaultAction::Panic).with_arg(9));
    let inj = Arc::new(FaultInjector::new(8, plan));
    let mut svc = GraphService::builder(&g)
        .max_lanes(1)
        .coalescing_window(0)
        .breaker(2, 100)
        .fault_injector(inj)
        .build();

    let doomed: Vec<Ticket> = (0..3)
        .map(|_| svc.submit(Query::bfs(9), Tick(0), None).unwrap())
        .collect();
    // Two consecutive single-lane panics trip the breaker; the third query
    // is shed from the queue without executing.
    svc.pump(Tick(0));
    for (i, &t) in doomed.iter().enumerate() {
        let err = svc.take_result(t).unwrap().unwrap_err();
        if i < 2 {
            assert_eq!(
                err,
                QueryError::ExecutionFailed {
                    reason: FailureReason::Panicked
                }
            );
        } else {
            assert_eq!(err, QueryError::Shed { until: Tick(100) });
        }
    }
    assert_eq!(
        svc.breaker_state(Query::bfs(9).coalescing_key(), Tick(1)),
        Some(BreakerState::Open { until: Tick(100) })
    );
    // While open: fail fast at the door.
    assert_eq!(
        svc.submit(Query::bfs(0), Tick(50), None).unwrap_err(),
        SubmitError::CircuitOpen { until: Tick(100) }
    );
    // Other groups are unaffected.
    let other = svc.submit(Query::sssp(0), Tick(50), None).unwrap();
    svc.pump(Tick(50));
    assert!(svc.take_result(other).unwrap().is_ok());

    // After the cooldown the breaker half-opens: a healthy probe (source
    // 9 is the poisoned one; 0 is fine) re-closes it.
    let probe = svc.submit(Query::bfs(0), Tick(100), None).unwrap();
    assert_eq!(
        svc.breaker_state(Query::bfs(9).coalescing_key(), Tick(100)),
        Some(BreakerState::HalfOpen)
    );
    svc.pump(Tick(100));
    assert!(svc.take_result(probe).unwrap().is_ok());
    assert_eq!(
        svc.breaker_state(Query::bfs(9).coalescing_key(), Tick(101)),
        Some(BreakerState::Closed)
    );

    let s = svc.stats().snapshot();
    assert_eq!(s.breaker_trips, 1);
    assert_eq!(s.shed, 1);
    assert_eq!(s.rejected_circuit_open, 1);
    assert!(s.is_conserved());
}

/// A failed half-open probe re-opens the breaker for a fresh cooldown.
#[test]
fn failed_probe_reopens_the_breaker() {
    quiet_injected_panics();
    let g = graph();
    let plan =
        FaultPlan::new().with(FailSpec::always("serve.lane", FaultAction::Panic).with_arg(9));
    let inj = Arc::new(FaultInjector::new(8, plan));
    let mut svc = GraphService::builder(&g)
        .max_lanes(1)
        .coalescing_window(0)
        .breaker(1, 100)
        .fault_injector(inj)
        .build();

    let first = svc.submit(Query::bfs(9), Tick(0), None).unwrap();
    svc.pump(Tick(0));
    assert!(svc.take_result(first).unwrap().is_err());
    // Probe with the still-poisoned source: back to open, new cooldown.
    let probe = svc.submit(Query::bfs(9), Tick(100), None).unwrap();
    svc.pump(Tick(100));
    assert!(svc.take_result(probe).unwrap().is_err());
    assert_eq!(
        svc.submit(Query::bfs(0), Tick(150), None).unwrap_err(),
        SubmitError::CircuitOpen { until: Tick(200) }
    );
    assert_eq!(svc.stats().snapshot().breaker_trips, 2);
}

// -- admission --------------------------------------------------------------

/// The QueueFull backpressure lifecycle on a hand-driven clock: fill the
/// bounded queue, get refused, let deadlines shed the backlog, refill.
#[test]
fn queue_full_backpressure_fill_shed_drain_refill() {
    let g = graph();
    let mut svc = GraphService::builder(&g)
        .queue_capacity(3)
        .coalescing_window(1_000)
        .build();
    // Fill to capacity with doomed deadlines.
    let doomed: Vec<Ticket> = (0..3)
        .map(|i| svc.submit(Query::bfs(i), Tick(0), Some(Tick(10))).unwrap())
        .collect();
    // Full: the fourth is refused at the door.
    assert_eq!(
        svc.submit(Query::bfs(3), Tick(1), None).unwrap_err(),
        SubmitError::QueueFull { capacity: 3 }
    );
    // The driver sleeps through the deadlines: the backlog sheds as typed
    // expirations, freeing the queue.
    assert!(svc.pump(Tick(11)).is_empty());
    assert!(svc.is_idle());
    for t in doomed {
        assert!(matches!(
            svc.take_result(t),
            Some(Err(QueryError::DeadlineExpired { .. }))
        ));
    }
    // Refill and complete normally.
    let again: Vec<Ticket> = (0..3)
        .map(|i| svc.submit(Query::bfs(i), Tick(20), None).unwrap())
        .collect();
    svc.flush(Tick(21));
    for t in again {
        assert!(svc.take_result(t).unwrap().is_ok());
    }
    let s = svc.stats().snapshot();
    assert_eq!(s.rejected_queue_full, 1);
    assert_eq!(s.deadline_misses, 3);
    assert_eq!(s.completed, 3);
    assert!(s.is_conserved());
}

/// Opt-in feasibility admission: once the wait histogram knows dispatches
/// take ~100 ticks, a 50-tick deadline is refused at the door instead of
/// being admitted to die in queue.
#[test]
fn infeasible_deadlines_are_refused_when_opted_in() {
    let g = graph();
    let mut svc = GraphService::builder(&g)
        .coalescing_window(100)
        .deadline_feasibility(true)
        .build();
    // Warm the histogram: one query that waits the full 100-tick window
    // (bucket upper bound 128 → that's the p99 estimate).
    let warm = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
    svc.pump(Tick(100));
    assert!(svc.take_result(warm).unwrap().is_ok());
    // Deadline 50 ticks out, predicted wait 128: refused, typed.
    assert_eq!(
        svc.submit(Query::bfs(1), Tick(200), Some(Tick(250)))
            .unwrap_err(),
        SubmitError::InfeasibleDeadline {
            deadline: Tick(250),
            predicted: Tick(328)
        }
    );
    // A roomy deadline is admitted.
    let ok = svc
        .submit(Query::bfs(1), Tick(200), Some(Tick(400)))
        .unwrap();
    svc.pump(Tick(300));
    assert!(svc.take_result(ok).unwrap().is_ok());
    let s = svc.stats().snapshot();
    assert_eq!(s.rejected_infeasible, 1);
    assert_eq!(s.deadline_misses, 0, "the hopeless query never queued");
}

/// Source validation at submit, on both backends: a bad source never
/// reaches the engine, a good one completes (satellite check).
#[test]
fn submit_validates_sources_on_both_backends() {
    let csr = generators::erdos_renyi(40, 0.08, true, 13);
    for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
        let g = Matrix::from_csr(&csr, backend);
        let mut svc = GraphService::builder(&g).coalescing_window(0).build();
        for bad in [Query::bfs(40), Query::sssp(40), Query::ppr(9999)] {
            let err = svc.submit(bad, Tick(0), None).unwrap_err();
            assert!(
                matches!(err, SubmitError::SourceOutOfRange { n: 40, .. }),
                "{backend:?}: {bad:?} must be refused, got {err}"
            );
        }
        let ok = svc.submit(Query::bfs(39), Tick(0), None).unwrap();
        svc.pump(Tick(0));
        assert!(svc.take_result(ok).unwrap().is_ok(), "{backend:?}");
        assert_eq!(svc.stats().snapshot().enqueued, 1);
    }
}

// -- torn-epoch safety (PR 8) -----------------------------------------------

/// The `grb.delta_merge` fail point: a compaction that panics mid-fold
/// publishes nothing — the pre-compaction snapshot stays fully readable and
/// bit-identical, the epoch and the delta log are untouched, and a retry
/// after the fault clears folds normally.  (Satellite: no torn epoch.)
#[test]
fn panicking_compaction_leaves_the_pre_compaction_snapshot_readable() {
    quiet_injected_panics();
    let g = graph();
    let plan = FaultPlan::new()
        .with(FailSpec::always("grb.delta_merge", FaultAction::Panic).with_max_fires(1));
    let inj = Arc::new(FaultInjector::new(21, plan));
    g.context().set_fault_injector(Some(inj.clone()));

    g.insert_edge(59, 0).unwrap();
    g.delete_edge(0, 1).unwrap();
    let snap = g.snapshot();
    let levels_before = bitgblas_algorithms::bfs(&snap, 0).levels;
    let (epoch, depth) = (g.head_epoch(), g.delta_len());

    let torn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.compact(g.context())));
    let payload = torn.expect_err("the injected panic must surface");
    assert_eq!(
        payload.downcast_ref::<InjectedPanic>().map(|p| p.point),
        Some("grb.delta_merge")
    );
    // Nothing was published: same epoch, same log, and the snapshot taken
    // before the attempt still answers bit-identically.
    assert_eq!(g.head_epoch(), epoch);
    assert_eq!(g.delta_len(), depth);
    assert_eq!(bitgblas_algorithms::bfs(&snap, 0).levels, levels_before);
    assert_eq!(
        bitgblas_algorithms::bfs(&g.snapshot(), 0).levels,
        levels_before
    );

    // The fault budget is spent; the retry folds and the view is unchanged.
    let report = g.compact(g.context()).unwrap();
    assert_eq!(report.folded, depth);
    assert_eq!(g.delta_len(), 0);
    assert_eq!(
        bitgblas_algorithms::bfs(&g.snapshot(), 0).levels,
        levels_before
    );
    assert_eq!(bitgblas_algorithms::bfs(&snap, 0).levels, levels_before);
    assert_eq!(inj.counts().panics, 1);
}

/// The same fault through the service's writer path: a panicking
/// `compact_after` fold is contained by the dispatch guard — queries keep
/// completing, nothing is lost, and the log survives for the next trigger.
#[test]
fn service_contains_a_panicking_compaction() {
    quiet_injected_panics();
    let g = graph();
    let plan = FaultPlan::new().with(FailSpec::always("grb.delta_merge", FaultAction::Panic));
    let inj = Arc::new(FaultInjector::new(22, plan));
    let mut svc = GraphService::builder(&g)
        .coalescing_window(0)
        .compact_after(1)
        .fault_injector(inj)
        .build();

    let tm = svc
        .submit(Query::insert_edge(59, 0), Tick(0), None)
        .unwrap();
    let tq = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
    svc.pump(Tick(0));
    // The mutation applied and the read completed; only the fold failed.
    assert_eq!(
        svc.take_result(tm).unwrap().unwrap(),
        QueryResult::Mutated { epoch: 1 }
    );
    assert!(svc.take_result(tq).unwrap().is_ok());
    assert_eq!(g.delta_len(), 1, "the unfolded log survives");
    let s = svc.stats().snapshot();
    assert_eq!(s.mutations_applied, 1);
    assert_eq!(s.compactions, 0);
    assert!(s.is_conserved());
    // New snapshots still read base ⊕ log.
    assert!(g.snapshot().csr().get(59, 0).is_some());
}

// -- determinism ------------------------------------------------------------

/// With an injector installed but an empty plan, every fail point is inert
/// and the service's answers are bit-identical to a plain service — the
/// fault machinery costs nothing when quiet.
#[test]
fn fault_free_replay_is_bit_identical() {
    let g = graph();
    let queries: Vec<Query> = (0..20)
        .map(|i| match i % 3 {
            0 => Query::bfs(i % 60),
            1 => Query::sssp(i % 60),
            _ => Query::ppr(i % 60),
        })
        .collect();

    let run = |svc: &mut GraphService<'_>| -> Vec<Result<QueryResult, QueryError>> {
        let tickets: Vec<Ticket> = queries
            .iter()
            .enumerate()
            .map(|(i, &q)| svc.submit(q, Tick(i as u64), None).unwrap())
            .collect();
        svc.flush(Tick(1000));
        tickets
            .into_iter()
            .map(|t| svc.take_result(t).unwrap())
            .collect()
    };

    let mut plain = GraphService::builder(&g).coalescing_window(5).build();
    let plain_results = run(&mut plain);

    let inj = Arc::new(FaultInjector::new(77, FaultPlan::new()));
    let mut chaos = GraphService::builder(&g)
        .coalescing_window(5)
        .fault_injector(inj.clone())
        .breaker(3, 50)
        .retry(2, 8)
        .build();
    let chaos_results = run(&mut chaos);

    assert_eq!(plain_results, chaos_results);
    assert_eq!(inj.counts().panics, 0);
    assert_eq!(inj.counts().transients, 0);
}

// -- chaos proptest ---------------------------------------------------------

fn query_stream(n: usize) -> impl Strategy<Value = Vec<Query>> {
    proptest::collection::vec((0usize..4, 0usize..1000), 1..50).prop_map(move |raw| {
        raw.into_iter()
            .map(|(kind, src)| match kind {
                0 => Query::bfs(src % n),
                1 => Query::sssp(src % n),
                2 => Query::ppr(src % n),
                // Mutations ride the same machinery and the same
                // conservation invariant as reads.
                _ => Query::insert_edge(src % n, (src / 7) % n),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline chaos invariant: under random fault plans (lane
    /// panics, batch transients, core transients, latency), every admitted
    /// ticket resolves exactly once and the stats conserve.
    #[test]
    fn chaos_every_admitted_ticket_resolves_exactly_once(
        seed in 0u64..10_000,
        queries in query_stream(60),
        pct_lane_panic in 0u64..25,
        pct_batch_transient in 0u64..40,
        pct_core_transient in 0u64..20,
    ) {
        quiet_injected_panics();
        let g = graph();
        let plan = FaultPlan::new()
            .with(FailSpec::always("serve.lane", FaultAction::Panic).with_probability(pct_lane_panic as f64 / 100.0))
            .with(FailSpec::always("serve.batch", FaultAction::Transient).with_probability(pct_batch_transient as f64 / 100.0))
            .with(FailSpec::always("grb.mxm_dispatch", FaultAction::Transient).with_probability(pct_core_transient as f64 / 100.0))
            .with(FailSpec::always("serve.batch", FaultAction::Latency(7)).with_probability(0.5));
        let inj = Arc::new(FaultInjector::new(seed, plan));
        let mut svc = GraphService::builder(&g)
            .coalescing_window(8)
            .max_lanes(16)
            .breaker(3, 64)
            .retry(2, 4)
            .queue_capacity(256)
            .fault_injector(inj)
            .build();

        // Submit with arrivals one tick apart; every fifth query carries a
        // deadline so the expiry path participates in conservation.
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut now = Tick(0);
        for (i, &q) in queries.iter().enumerate() {
            now = Tick(i as u64);
            let deadline = (i % 5 == 4).then(|| now.after(6));
            match svc.submit(q, now, deadline) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::CircuitOpen { .. }) => {} // fail-fast is legal here
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }

        // Event-driven drain: step the clock to each next event.  The step
        // cap is a safety net; the backoff/attempts bounds guarantee the
        // loop ends long before it.
        let mut steps = 0;
        while let Some(t) = svc.next_event_time() {
            steps += 1;
            prop_assert!(steps < 10_000, "event loop did not converge");
            now = now.max(t);
            svc.pump(now);
        }
        svc.flush(now.after(1));
        prop_assert!(svc.is_idle());

        // Exactly once: every admitted ticket has exactly one resolution.
        for t in tickets {
            prop_assert!(svc.take_result(t).is_some(), "ticket resolved");
            prop_assert!(svc.take_result(t).is_none(), "slot consumed");
        }
        let s = svc.stats().snapshot();
        prop_assert!(s.is_conserved(),
            "conservation: enqueued {} = completed {} + failed {} + expired {} + shed {}",
            s.enqueued, s.completed, s.failed, s.deadline_misses, s.shed);
    }

    /// Replaying the same seed, plan and query stream twice produces the
    /// same counter totals — the whole failure path is deterministic.
    #[test]
    fn chaos_replays_are_deterministic(
        seed in 0u64..10_000,
        queries in query_stream(60),
    ) {
        quiet_injected_panics();
        let g = graph();
        let run = || {
            let plan = FaultPlan::new()
                .with(FailSpec::always("serve.lane", FaultAction::Panic).with_probability(0.15))
                .with(FailSpec::always("serve.batch", FaultAction::Transient).with_probability(0.3));
            let inj = Arc::new(FaultInjector::new(seed, plan));
            let mut svc = GraphService::builder(&g)
                .coalescing_window(4)
                .max_lanes(8)
                .breaker(2, 32)
                .retry(1, 4)
                .fault_injector(inj)
                .build();
            for (i, &q) in queries.iter().enumerate() {
                let _ = svc.submit(q, Tick(i as u64), None);
            }
            svc.flush(Tick(queries.len() as u64));
            svc.stats().snapshot()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a, b);
    }
}
