//! Service-level acceptance suite.
//!
//! **Parity**: a coalesced service must be invisible in the results — every
//! query answered through [`GraphService`] must be *bit-identical* to the
//! same query run standalone on the algorithms layer, whatever mix of
//! BFS/SSSP/PPR arrived around it, however the lanes were packed, and on
//! both a bit backend and the float baseline.  This holds because the
//! batched kernels are lane-count-invariant (proven per-algorithm in the
//! algorithms crate) and the service adds only routing around them.
//!
//! **Deadlines**: the scheduler runs on the caller-supplied [`Tick`] clock
//! — no `Instant::now()` anywhere in a scheduling decision — so deadline
//! behaviour is tested by driving the clock by hand: dispatch *at* the
//! deadline is the last legal moment, one tick later is a typed
//! [`QueryError::DeadlineExpired`], and a miss is never a silent drop.

use proptest::prelude::*;

use bitgblas_algorithms::{bfs, ppr, sssp, PprConfig};
use bitgblas_core::{Backend, Matrix, TileSize};
use bitgblas_datagen::generators;
use bitgblas_serve::{GraphService, Query, QueryError, QueryResult, SubmitError, Tick, Ticket};

fn bits32(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// The service answer for `query` must equal the standalone run, bit for
/// bit.
fn assert_matches_standalone(graph: &Matrix, query: Query, got: &QueryResult) {
    match (query, got) {
        (Query::Bfs { source }, QueryResult::Bfs { levels }) => {
            assert_eq!(levels, &bfs(graph, source).levels, "bfs from {source}");
        }
        (Query::Sssp { source }, QueryResult::Sssp { distances }) => {
            let want = sssp(graph, source).distances;
            assert_eq!(
                bits32(distances),
                bits32(&want),
                "sssp from {source} not bit-identical"
            );
        }
        (Query::Ppr { seed, config }, QueryResult::Ppr { scores }) => {
            let want = ppr(graph, seed, &config).scores;
            assert_eq!(
                bits32(scores),
                bits32(&want),
                "ppr from {seed} not bit-identical"
            );
        }
        (q, r) => panic!("result kind mismatch: {q:?} answered by {r:?}"),
    }
}

/// Drive `queries` through a service (arrivals one tick apart, periodic
/// pumps, final flush) and check every ticket against the standalone run.
fn run_interleaving(graph: &Matrix, queries: &[Query], max_lanes: usize, window: u64) {
    let mut svc = GraphService::builder(graph)
        .max_lanes(max_lanes)
        .coalescing_window(window)
        .queue_capacity(queries.len().max(1))
        .build();
    let mut tickets: Vec<(Ticket, Query)> = Vec::new();
    for (i, &q) in queries.iter().enumerate() {
        let now = Tick(i as u64);
        let t = svc.submit(q, now, None).unwrap();
        tickets.push((t, q));
        // Pump mid-stream sometimes so batches form at ragged boundaries,
        // not only at the final flush.
        if i % 17 == 16 {
            svc.pump(now);
        }
    }
    svc.flush(Tick(queries.len() as u64 + window));
    assert!(svc.is_idle());
    for (ticket, query) in tickets {
        let got = svc
            .take_result(ticket)
            .expect("every admitted query completes")
            .expect("no deadline was set, so no expiry");
        assert_matches_standalone(graph, query, &got);
    }
    let s = svc.stats().snapshot();
    assert_eq!(s.completed, queries.len() as u64);
    assert_eq!(s.deadline_misses, 0);
}

/// Strategy: a mixed query stream.  `0..3` maps to BFS/SSSP/PPR; PPR gets
/// two configs so config-keyed coalescing is exercised too.
fn query_stream(n: usize) -> impl Strategy<Value = Vec<Query>> {
    proptest::collection::vec((0usize..4, 0usize..1000), 1..80).prop_map(move |raw| {
        raw.into_iter()
            .map(|(kind, src)| match kind {
                0 => Query::bfs(src % n),
                1 => Query::sssp(src % n),
                2 => Query::ppr(src % n),
                _ => Query::Ppr {
                    seed: src % n,
                    config: PprConfig {
                        iterations: 6,
                        ..Default::default()
                    },
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Mixed interleavings on the bit backend: coalescing is invisible.
    #[test]
    fn coalesced_results_match_standalone_bit8(
        seed in 1u64..500,
        queries in query_stream(60),
        max_lanes in 1usize..70,
        window in 0u64..40,
    ) {
        let csr = generators::erdos_renyi(60, 0.05, seed % 2 == 0, seed);
        let graph = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        run_interleaving(&graph, &queries, max_lanes, window);
    }

    /// Same property on the float baseline backend.
    #[test]
    fn coalesced_results_match_standalone_float(
        seed in 1u64..500,
        queries in query_stream(60),
        window in 0u64..40,
    ) {
        let csr = generators::erdos_renyi(60, 0.05, seed % 2 == 0, seed);
        let graph = Matrix::from_csr(&csr, Backend::FloatCsr);
        run_interleaving(&graph, &queries, 64, window);
    }
}

/// 70 same-kind arrivals against a 64-lane cap: the stream must split into
/// a full lane word plus a remainder batch, with every result still exact.
#[test]
fn batch_straddles_the_64_lane_boundary() {
    let csr = generators::erdos_renyi(90, 0.05, true, 11);
    let graph = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
    let queries: Vec<Query> = (0..70).map(|i| Query::bfs(i % 90)).collect();
    let mut svc = GraphService::builder(&graph)
        .coalescing_window(1_000)
        .queue_capacity(128)
        .build();
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|&q| svc.submit(q, Tick(0), None).unwrap())
        .collect();
    let reports = svc.flush(Tick(1));
    assert_eq!(
        reports.iter().map(|r| r.lanes).collect::<Vec<_>>(),
        [64, 6],
        "full lane word first, remainder second"
    );
    for (t, q) in tickets.iter().zip(&queries) {
        let got = svc.take_result(*t).unwrap().unwrap();
        assert_matches_standalone(&graph, *q, &got);
    }
    assert_eq!(svc.stats().snapshot().max_batch_lanes, 64);
}

/// The injectable-clock deadline contract, end to end.
#[test]
fn deadline_semantics_on_a_hand_driven_clock() {
    let csr = generators::erdos_renyi(40, 0.08, true, 7);
    let graph = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
    let mut svc = GraphService::builder(&graph)
        .coalescing_window(1_000)
        .build();

    // A deadline at tick 50: pumping *at* 50 is the last legal dispatch.
    let on_time = svc.submit(Query::bfs(0), Tick(0), Some(Tick(50))).unwrap();
    assert!(svc.pump(Tick(49)).is_empty(), "not due yet");
    let reports = svc.pump(Tick(50));
    assert_eq!(reports.len(), 1, "deadline forces dispatch before expiry");
    assert_matches_standalone(
        &graph,
        Query::bfs(0),
        &svc.take_result(on_time).unwrap().unwrap(),
    );

    // A deadline the driver sleeps through: typed error, never silence.
    let late = svc
        .submit(Query::sssp(1), Tick(60), Some(Tick(70)))
        .unwrap();
    assert!(svc.pump(Tick(71)).is_empty(), "nothing left to dispatch");
    assert_eq!(
        svc.take_result(late).unwrap(),
        Err(QueryError::DeadlineExpired {
            deadline: Tick(70),
            now: Tick(71)
        })
    );
    let s = svc.stats().snapshot();
    assert_eq!(s.deadline_misses, 1);
    assert_eq!(s.completed, 1);

    // A deadline not after submission never enters the queue.
    assert_eq!(
        svc.submit(Query::bfs(2), Tick(80), Some(Tick(80)))
            .unwrap_err(),
        SubmitError::DeadlineBeforeSubmission {
            deadline: Tick(80),
            now: Tick(80)
        }
    );
    assert!(svc.is_idle());
}

/// An urgent query's deadline pulls compatible later arrivals into its
/// batch (occupancy win), while the expired one of an *incompatible* kind
/// still errors independently.
#[test]
fn deadlines_interact_with_coalescing_per_group() {
    let csr = generators::erdos_renyi(40, 0.08, true, 9);
    let graph = Matrix::from_csr(&csr, Backend::FloatCsr);
    let mut svc = GraphService::builder(&graph)
        .coalescing_window(10_000)
        .build();
    let doomed = svc.submit(Query::ppr(3), Tick(0), Some(Tick(20))).unwrap();
    let urgent = svc.submit(Query::bfs(0), Tick(5), Some(Tick(100))).unwrap();
    let rider = svc.submit(Query::bfs(7), Tick(10), None).unwrap();

    // The driver misses the PPR deadline but hits the BFS one.
    let reports = svc.pump(Tick(100));
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].lanes, 2, "rider coalesced into the urgent batch");
    assert!(matches!(
        svc.take_result(doomed),
        Some(Err(QueryError::DeadlineExpired { .. }))
    ));
    for (t, q) in [(urgent, Query::bfs(0)), (rider, Query::bfs(7))] {
        assert_matches_standalone(&graph, q, &svc.take_result(t).unwrap().unwrap());
    }
}
