//! # bitgblas-serve — a query-serving layer over the batched engine
//!
//! The rest of the workspace answers *one* traversal at a time (or a batch
//! the caller assembled by hand).  This crate turns that engine into a
//! **service**: independent queries arrive one by one — BFS here, SSSP
//! there, a personalized-PageRank request in between — and the
//! [`GraphService`] coalesces compatible arrivals into `k ≤ 64`-lane
//! [`MultiVec`](bitgblas_core::MultiVec) batches, executes them on the
//! multi-source engine (`bfs_multi` / `sssp_multi` / `ppr_multi`), and
//! demuxes the per-lane results back to per-query tickets.  Sharing a
//! batch amortizes every edge sweep across up to 64 queries (one lane
//! word of Boolean state per node), which is exactly the economics the
//! bit-level batching was built for.
//!
//! Four pieces:
//!
//! * [`Query`] / [`QueryResult`] / [`Ticket`] — the request surface.
//!   Queries carry an optional dispatch **deadline**; expiry is a typed
//!   [`QueryError::DeadlineExpired`] completion, never a silent drop.
//! * [`GraphService`] — admission (bounded queue, backpressure via
//!   [`SubmitError::QueueFull`], circuit-breaker fail-fast, optional
//!   deadline-feasibility checks), lane coalescing keyed by
//!   [`CoalescingKey`], and deadline-aware dispatch on an explicit
//!   caller-driven [`Tick`] clock (no wall-clock reads in scheduling —
//!   fully deterministic and testable).
//! * **Fault containment** — execution runs under a panic guard; a
//!   panicking batch is bisected to isolate the poison lane (innocents
//!   complete, the culprit resolves [`QueryError::ExecutionFailed`]),
//!   transient failures retry with deterministic exponential backoff, and
//!   repeated panics trip a per-group circuit breaker ([`BreakerState`]).
//!   A seeded [`FaultInjector`](bitgblas_core::FaultInjector) drives the
//!   chaos suite; without one, every fail point is inert and execution is
//!   bit-identical to a fault-free service.
//! * [`ServiceStats`] — lock-free counters plus a fixed-bucket wait
//!   histogram ([`ServiceCounts::wait_p50`] / [`wait_p99`](ServiceCounts::wait_p99)),
//!   in the style of the core's `ExecStats`.  At quiescence the ticket
//!   conservation identity holds: every admitted query resolves exactly
//!   once ([`ServiceCounts::is_conserved`]).
//!
//! # Example
//!
//! ```
//! use bitgblas_core::{Backend, Matrix, TileSize};
//! use bitgblas_serve::{GraphService, Query, QueryResult, Tick};
//! use bitgblas_sparse::Coo;
//!
//! // An undirected 6-cycle.
//! let mut coo = Coo::new(6, 6);
//! for v in 0..6 {
//!     coo.push_undirected_edge(v, (v + 1) % 6).unwrap();
//! }
//! let graph = Matrix::from_csr(&coo.to_binary_csr(), Backend::Bit(TileSize::S8));
//!
//! // A service that waits at most 100 ticks for batch-mates.
//! let mut svc = GraphService::builder(&graph)
//!     .coalescing_window(100)
//!     .build();
//!
//! // Two BFS queries and a PPR query arrive close together.
//! let t0 = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
//! let t1 = svc.submit(Query::bfs(3), Tick(40), None).unwrap();
//! let t2 = svc.submit(Query::ppr(0), Tick(60), None).unwrap();
//!
//! // When the first query's window closes (tick 100), the BFS pair
//! // dispatches as one 2-lane batch; the PPR group's window is still
//! // open, so it waits for potential batch-mates until tick 160.
//! let reports = svc.pump(Tick(100));
//! assert_eq!(reports.len(), 1);
//! assert_eq!(reports[0].lanes, 2);
//! assert_eq!(svc.next_event_time(), Some(Tick(160)));
//! assert_eq!(svc.pump(Tick(160)).len(), 1);
//!
//! // Results demux per ticket and match standalone runs exactly.
//! match svc.take_result(t0).unwrap().unwrap() {
//!     QueryResult::Bfs { levels } => {
//!         assert_eq!(levels, bitgblas_algorithms::bfs(&graph, 0).levels);
//!     }
//!     other => panic!("unexpected result {other:?}"),
//! }
//! assert!(svc.take_result(t1).unwrap().is_ok());
//! assert!(svc.take_result(t2).unwrap().is_ok());
//! assert!((svc.stats().snapshot().mean_batch_occupancy() - 1.5).abs() < 1e-12);
//! ```

pub mod breaker;
pub mod query;
pub mod service;
pub mod stats;

pub use breaker::BreakerState;
pub use query::{
    CoalescingKey, FailureReason, Query, QueryError, QueryResult, SubmitError, Tick, Ticket,
};
pub use service::{BatchReport, GraphService, GraphServiceBuilder, MAX_BATCH_LANES};
pub use stats::{ServiceCounts, ServiceStats, WAIT_BUCKETS};
