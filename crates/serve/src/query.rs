//! Query, result and error types of the graph service.

use bitgblas_algorithms::PprConfig;
use bitgblas_core::EdgeDelta;

/// A point on the service's virtual clock, in **ticks** (the service
/// attaches no unit; callers conventionally use microseconds).
///
/// The service never reads a wall clock: every scheduling decision is a
/// function of the `Tick`s callers pass to
/// [`submit`](crate::GraphService::submit) and
/// [`pump`](crate::GraphService::pump).  That makes admission, coalescing
/// and deadline handling deterministic and testable (drive the clock by
/// hand), and lets an open-loop benchmark replay a seeded arrival process
/// reproducibly.  A production driver maps `Instant::elapsed()` to ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

impl Tick {
    /// This tick plus `delta` ticks (saturating).
    pub fn after(self, delta: u64) -> Tick {
        Tick(self.0.saturating_add(delta))
    }
}

/// One independent graph query, submitted from an arbitrary source.
///
/// Queries of the same *kind* (and, for PPR, the same configuration) are
/// compatible: the service coalesces them into one batched `MultiVec`
/// execution.  See [`Query::coalescing_key`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Breadth-first search from `source` (Boolean semiring).
    Bfs {
        /// The traversal's source vertex.
        source: usize,
    },
    /// Single-source shortest path from `source` over unit weights
    /// (min-plus semiring).
    Sssp {
        /// The traversal's source vertex.
        source: usize,
    },
    /// Personalized PageRank seeded at `seed` (arithmetic semiring,
    /// fixed-iteration execution — see `bitgblas_algorithms::ppr`).
    Ppr {
        /// The personalization seed vertex.
        seed: usize,
        /// Damping/iteration configuration.  Part of the coalescing key:
        /// only queries with identical configuration share a batch.
        config: PprConfig,
    },
    /// A graph mutation (PR 8): append one edge delta to the served graph's
    /// delta log.  Mutations ride the same admission/coalescing/dispatch
    /// machinery as traversals — a coalesced mutation batch is applied as
    /// one atomic append publishing **one** new epoch, and every lane
    /// resolves [`QueryResult::Mutated`] with that epoch.  In-flight
    /// traversal batches are unaffected: they read the snapshot pinned at
    /// their own dispatch.
    Mutate {
        /// The edge insertion or deletion to apply.
        delta: EdgeDelta,
    },
}

impl Query {
    /// A BFS query.
    pub fn bfs(source: usize) -> Self {
        Query::Bfs { source }
    }

    /// An SSSP query.
    pub fn sssp(source: usize) -> Self {
        Query::Sssp { source }
    }

    /// A PPR query with the default configuration.
    pub fn ppr(seed: usize) -> Self {
        Query::Ppr {
            seed,
            config: PprConfig::default(),
        }
    }

    /// A mutation inserting the edge `row → col`.
    pub fn insert_edge(row: usize, col: usize) -> Self {
        Query::Mutate {
            delta: EdgeDelta::insert(row, col),
        }
    }

    /// A mutation deleting the edge `row → col`.
    pub fn delete_edge(row: usize, col: usize) -> Self {
        Query::Mutate {
            delta: EdgeDelta::delete(row, col),
        }
    }

    /// The source/seed vertex — the lane this query occupies in a batch.
    /// For a mutation this is the delta's row (its column is validated
    /// separately at submission).
    pub fn source(&self) -> usize {
        match *self {
            Query::Bfs { source } | Query::Sssp { source } => source,
            Query::Ppr { seed, .. } => seed,
            Query::Mutate { delta } => delta.row,
        }
    }

    /// The key under which arrivals coalesce: algorithm kind plus every
    /// configuration bit that changes the batched execution (the graph and
    /// traversal direction are fixed per service instance and therefore
    /// implicit).  Two queries with equal keys can share one `MultiVec`
    /// batch; the per-lane results are independent by construction.
    pub fn coalescing_key(&self) -> CoalescingKey {
        match *self {
            Query::Bfs { .. } => CoalescingKey::Bfs,
            Query::Sssp { .. } => CoalescingKey::Sssp,
            Query::Ppr { config, .. } => CoalescingKey::Ppr {
                alpha_bits: config.alpha.to_bits(),
                iterations: config.iterations,
                fused: config.fusion == bitgblas_core::Fusion::Fused,
            },
            Query::Mutate { .. } => CoalescingKey::Mutate,
        }
    }
}

/// The batch-compatibility key of a [`Query`] — see
/// [`Query::coalescing_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoalescingKey {
    /// BFS batches (Boolean semiring).
    Bfs,
    /// SSSP batches (min-plus semiring).
    Sssp,
    /// PPR batches; only identically-configured queries coalesce.
    Ppr {
        /// `f32::to_bits` of the damping factor (bit-exact comparison).
        alpha_bits: u32,
        /// Number of power iterations.
        iterations: usize,
        /// Whether the fused execution plan is used.  Part of the key
        /// because fused and node-at-a-time sweeps order float reductions
        /// differently — mixing them in one batch would break the
        /// bit-parity guarantee against standalone runs.
        fused: bool,
    },
    /// Mutation batches: coalesced deltas are applied as one atomic append
    /// publishing one epoch.
    Mutate,
}

/// The per-query answer the service demuxes out of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// BFS levels: hops from the source, `-1` when unreachable.
    Bfs {
        /// `levels[v]` = hop count of vertex `v`.
        levels: Vec<i64>,
    },
    /// SSSP distances (`f32::INFINITY` when unreachable).
    Sssp {
        /// `distances[v]` = shortest-path length to vertex `v`.
        distances: Vec<f32>,
    },
    /// Personalized PageRank scores (sum to ≈ 1).
    Ppr {
        /// `scores[v]` = PPR score of vertex `v` for this query's seed.
        scores: Vec<f32>,
    },
    /// A mutation was applied and published.
    Mutated {
        /// The epoch at which this lane's delta (batched with its
        /// lane-mates) became visible to new snapshots.
        epoch: u64,
    },
}

/// Why [`submit`](crate::GraphService::submit) refused a query at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — backpressure; retry later or shed.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The deadline is not after the submission time, so the query could
    /// never be dispatched.
    DeadlineBeforeSubmission {
        /// The rejected deadline.
        deadline: Tick,
        /// The submission instant.
        now: Tick,
    },
    /// The source/seed vertex does not exist in the served graph.
    SourceOutOfRange {
        /// The offending vertex id.
        source: usize,
        /// Number of vertices in the served graph.
        n: usize,
    },
    /// The circuit breaker for this query's coalescing group is open after
    /// repeated execution failures — the service refuses new work for the
    /// group until the cooldown elapses (fail fast instead of queueing onto
    /// a known-bad path).
    CircuitOpen {
        /// The earliest tick at which the breaker half-opens and admits a
        /// probe again.
        until: Tick,
    },
    /// Deadline-feasibility admission (opt-in,
    /// [`deadline_feasibility`](crate::GraphServiceBuilder::deadline_feasibility))
    /// predicted from the observed wait histogram that this deadline cannot
    /// be met, so the query is refused at the door instead of expiring in
    /// queue.
    InfeasibleDeadline {
        /// The rejected deadline.
        deadline: Tick,
        /// The predicted completion tick (submission + p99 observed wait).
        predicted: Tick,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "service queue is full (capacity {capacity})")
            }
            SubmitError::DeadlineBeforeSubmission { deadline, now } => write!(
                f,
                "deadline tick {} is not after submission tick {}",
                deadline.0, now.0
            ),
            SubmitError::SourceOutOfRange { source, n } => {
                write!(f, "source vertex {source} out of range (n = {n})")
            }
            SubmitError::CircuitOpen { until } => {
                write!(f, "circuit breaker open until tick {}", until.0)
            }
            SubmitError::InfeasibleDeadline {
                deadline,
                predicted,
            } => write!(
                f,
                "deadline tick {} is infeasible (predicted completion tick {})",
                deadline.0, predicted.0
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *admitted* query completed without a result.  Expiry is a typed
/// completion, never a silent drop: the ticket resolves to this error and
/// the miss is counted in [`ServiceCounts`](crate::ServiceCounts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The query's deadline passed while it waited in the queue; it was
    /// never dispatched.
    DeadlineExpired {
        /// The deadline that passed.
        deadline: Tick,
        /// The pump instant at which the expiry was detected.
        now: Tick,
    },
    /// The query's execution failed.  A panicking lane is *contained*: the
    /// dispatch bisects the batch to isolate the poison lane, completes the
    /// innocents normally, and resolves only the culprit with this error.
    ExecutionFailed {
        /// What kind of failure terminated the query.
        reason: FailureReason,
    },
    /// The query was shed from the queue when its group's circuit breaker
    /// tripped — a typed completion, never a silent drop.
    Shed {
        /// The earliest tick at which the breaker half-opens again.
        until: Tick,
    },
}

/// Why an execution terminally failed (see
/// [`QueryError::ExecutionFailed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The lane's execution panicked; the panic was caught and bisected
    /// down to this query, which is the poison lane.
    Panicked,
    /// The lane failed transiently and exhausted its retry budget.
    RetriesExhausted {
        /// Number of attempts made (initial dispatch plus retries).
        attempts: u32,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            QueryError::DeadlineExpired { deadline, now } => write!(
                f,
                "deadline tick {} expired in queue (detected at tick {})",
                deadline.0, now.0
            ),
            QueryError::ExecutionFailed { reason } => match reason {
                FailureReason::Panicked => {
                    write!(
                        f,
                        "execution panicked (contained; this lane was the poison)"
                    )
                }
                FailureReason::RetriesExhausted { attempts } => {
                    write!(
                        f,
                        "execution failed transiently {attempts} times (retries exhausted)"
                    )
                }
            },
            QueryError::Shed { until } => write!(
                f,
                "shed from queue by a circuit-breaker trip (open until tick {})",
                until.0
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Handle to a submitted query; redeem it with
/// [`take_result`](crate::GraphService::take_result) after the batch it
/// rode in completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[must_use = "a dropped ticket makes its result unredeemable"]
pub struct Ticket(pub(crate) u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_keys_split_by_kind_and_config() {
        assert_eq!(
            Query::bfs(0).coalescing_key(),
            Query::bfs(9).coalescing_key()
        );
        assert_ne!(
            Query::bfs(0).coalescing_key(),
            Query::sssp(0).coalescing_key()
        );
        assert_eq!(
            Query::ppr(1).coalescing_key(),
            Query::ppr(2).coalescing_key()
        );
        let custom = Query::Ppr {
            seed: 1,
            config: PprConfig {
                iterations: 5,
                ..Default::default()
            },
        };
        assert_ne!(custom.coalescing_key(), Query::ppr(1).coalescing_key());
    }

    #[test]
    fn tick_after_saturates() {
        assert_eq!(Tick(5).after(3), Tick(8));
        assert_eq!(Tick(u64::MAX).after(1), Tick(u64::MAX));
    }

    #[test]
    fn errors_render() {
        let s = SubmitError::QueueFull { capacity: 4 }.to_string();
        assert!(s.contains("capacity 4"));
        let q = QueryError::DeadlineExpired {
            deadline: Tick(10),
            now: Tick(12),
        }
        .to_string();
        assert!(q.contains("10") && q.contains("12"));
    }

    #[test]
    fn failure_errors_render() {
        assert!(SubmitError::CircuitOpen { until: Tick(30) }
            .to_string()
            .contains("until tick 30"));
        assert!(SubmitError::InfeasibleDeadline {
            deadline: Tick(5),
            predicted: Tick(40)
        }
        .to_string()
        .contains("infeasible"));
        assert!(QueryError::ExecutionFailed {
            reason: FailureReason::Panicked
        }
        .to_string()
        .contains("poison"));
        assert!(QueryError::ExecutionFailed {
            reason: FailureReason::RetriesExhausted { attempts: 3 }
        }
        .to_string()
        .contains("3 times"));
        assert!(QueryError::Shed { until: Tick(99) }
            .to_string()
            .contains("99"));
    }
}
