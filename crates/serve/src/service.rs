//! The [`GraphService`]: admission, lane-coalescing, deadline-aware
//! dispatch, fault containment and result demultiplexing.
//!
//! # Scheduling model
//!
//! The service is an explicitly-clocked event machine.  Producers
//! [`submit`](GraphService::submit) queries (admission: bounded queue with
//! backpressure, deadline sanity, source validation, circuit-breaker and
//! optional deadline-feasibility checks); a driver loop calls
//! [`pump`](GraphService::pump) with the current [`Tick`], and the service
//! dispatches every *ready* batch synchronously, demuxing per-lane results
//! into per-ticket slots redeemed with
//! [`take_result`](GraphService::take_result).  A group of compatible
//! pending queries (equal [`CoalescingKey`]) is ready when it holds at
//! least one *eligible* query (its retry backoff, if any, has elapsed) and
//! any of:
//!
//! * **full** — the group holds [`max_lanes`](GraphServiceBuilder::max_lanes)
//!   eligible queries (a full lane word: dispatch cannot get cheaper per
//!   query);
//! * **window closed** — the group's *oldest* eligible query has waited
//!   [`coalescing_window`](GraphServiceBuilder::coalescing_window) ticks (a
//!   lone query never waits longer than the window);
//! * **deadline reached** — some eligible member's deadline is `now`
//!   (dispatching at the deadline is the last legal moment, so a query is
//!   never coalesced *past* its deadline; queries whose deadline already
//!   passed are completed with the typed [`QueryError::DeadlineExpired`]
//!   instead, never silently dropped).
//!
//! [`next_event_time`](GraphService::next_event_time) tells the driver the
//! earliest tick at which any of those conditions can fire, so drivers
//! (and the open-loop benchmark) can step the virtual clock event-to-event
//! without polling.
//!
//! # Failure model
//!
//! Execution runs under a panic guard.  A panicking batch is **bisected**
//! to isolate the poison lane: halves re-execute independently, innocent
//! lanes complete normally, and only the culprit resolves with the typed
//! [`QueryError::ExecutionFailed`] — at a cost of at most `2·⌈log₂ k⌉`
//! extra engine calls for a `k`-lane batch.  Transient failures (typed
//! [`GrbError::FaultInjected`](bitgblas_core::grb::GrbError) from a fail
//! point, or any other typed engine error) are **retried** with
//! exponential backoff on the virtual clock, up to a budget; exhaustion is
//! a typed terminal failure.  Repeated panics on one coalescing key trip a
//! per-group **circuit breaker** (see [`BreakerState`]) that sheds the
//! group's queue and refuses new submissions until a cooldown elapses.
//!
//! The service itself never reads a wall clock — every scheduling decision
//! (including backoff and breaker cooldowns) is a function of
//! caller-supplied ticks, which is what makes the deadline and chaos tests
//! deterministic and the benchmark's arrival replay reproducible.  The
//! only `Instant` use is *reporting*: each [`BatchReport`] carries the
//! measured execution time of its batch, which drivers may feed back into
//! their virtual clock (the open-loop harness does) but the scheduler
//! never consults.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bitgblas_algorithms::{try_bfs_multi_dir, try_ppr_multi_dir, try_sssp_multi_dir, PprConfig};
use bitgblas_core::faultinject::{FaultAction, FaultInjector, InjectedPanic};
use bitgblas_core::grb::{Direction, GrbError, Snapshot};
use bitgblas_core::{EdgeDelta, Fusion, Matrix};

use crate::breaker::{Admission, BreakerState, CircuitBreaker};
use crate::query::{
    CoalescingKey, FailureReason, Query, QueryError, QueryResult, SubmitError, Tick, Ticket,
};
use crate::stats::ServiceStats;

/// The hard lane cap: one `u64` lane word — a batch never exceeds 64
/// lanes, so every batched Boolean sweep advances the whole batch with one
/// OR per edge.
pub const MAX_BATCH_LANES: usize = 64;

/// One query waiting in a coalescing group.
#[derive(Debug, Clone, Copy)]
struct Pending {
    ticket: Ticket,
    query: Query,
    arrival: Tick,
    deadline: Option<Tick>,
    /// Dispatch attempts so far (0 until the first dispatch resolves).
    attempts: u32,
    /// Earliest tick this query may dispatch (arrival, or the end of its
    /// retry backoff).
    not_before: Tick,
}

/// What one [`pump`](GraphService::pump) dispatch executed.
#[derive(Debug, Clone)]
#[must_use = "the report carries the dispatch's tickets and measured cost"]
pub struct BatchReport {
    /// The coalescing group the batch came from.
    pub key: CoalescingKey,
    /// Number of lanes (coalesced queries) in the batch.
    pub lanes: usize,
    /// Measured execution time of the batched engine call plus any
    /// injected virtual latency, in microseconds.  Reporting only — the
    /// scheduler never reads it; drivers with a virtual clock may add it
    /// to their `now`.
    pub exec_us: u64,
    /// The tickets dispatched in this batch, in lane order.  A lane may
    /// resolve with a result, a typed failure, or a retry — redeem the
    /// ticket to find out.
    pub tickets: Vec<Ticket>,
}

/// Configures and builds a [`GraphService`] — see the [module
/// docs](self) for the scheduling and failure models.
#[derive(Debug, Clone)]
pub struct GraphServiceBuilder<'g> {
    graph: &'g Matrix,
    max_lanes: usize,
    window: u64,
    capacity: usize,
    direction: Direction,
    fault: Option<Arc<FaultInjector>>,
    breaker_cfg: Option<(u32, u64)>,
    retry_max: u32,
    backoff_base: u64,
    feasibility: bool,
    compact_after: Option<usize>,
}

impl<'g> GraphServiceBuilder<'g> {
    /// Maximum lanes coalesced into one batch, clamped to
    /// `1..=`[`MAX_BATCH_LANES`] (default: 64 — one full lane word).
    pub fn max_lanes(mut self, k: usize) -> Self {
        self.max_lanes = k.clamp(1, MAX_BATCH_LANES);
        self
    }

    /// The coalescing window in ticks: the longest a query may sit waiting
    /// for batch-mates before the service dispatches anyway (default: 1000).
    /// `0` disables coalescing-by-waiting — every pump dispatches whatever
    /// is queued.
    pub fn coalescing_window(mut self, ticks: u64) -> Self {
        self.window = ticks;
        self
    }

    /// Bounded queue capacity across all coalescing groups (default: 1024).
    /// Submissions beyond it are refused with [`SubmitError::QueueFull`] —
    /// the service sheds load at the door instead of growing an unbounded
    /// backlog.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Traversal direction for the batched executions (default:
    /// [`Direction::Auto`] — per-iteration Beamer switching on the
    /// node-granular batch frontier).
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Install a seeded [`FaultInjector`].  The service polls the
    /// `serve.lane` (per lane, arg = source) and `serve.batch` (per engine
    /// call) fail points, and threads the injector into the graph's
    /// context so the core `grb.mxv_dispatch` / `grb.mxm_dispatch` points
    /// fire too.  Without an injector every fail point is inert and
    /// execution is bit-identical to a fault-free service.
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.fault = Some(injector);
        self
    }

    /// Enable the per-coalescing-group circuit breaker: `threshold`
    /// consecutive panicking dispatches trip it, shedding the group's
    /// queue and refusing new submissions for `cooldown_ticks`, after
    /// which one single-lane probe decides between re-closing and
    /// re-opening (default: disabled).
    pub fn breaker(mut self, threshold: u32, cooldown_ticks: u64) -> Self {
        self.breaker_cfg = Some((threshold.max(1), cooldown_ticks));
        self
    }

    /// Retry policy for transiently-failed lanes: up to `max_retries`
    /// requeues, the `i`-th waiting `backoff_base · 2^(i-1)` ticks before
    /// becoming eligible again (default: 2 retries, base 8 ticks).
    /// Exhaustion resolves the query with the typed
    /// [`QueryError::ExecutionFailed`].
    pub fn retry(mut self, max_retries: u32, backoff_base: u64) -> Self {
        self.retry_max = max_retries;
        self.backoff_base = backoff_base;
        self
    }

    /// Opt in to deadline-feasibility admission: a submission whose
    /// deadline precedes `now + p99 observed wait` is refused with
    /// [`SubmitError::InfeasibleDeadline`] instead of expiring in queue
    /// (default: off — the estimator needs a warmed-up wait histogram to
    /// be fair).
    pub fn deadline_feasibility(mut self, enabled: bool) -> Self {
        self.feasibility = enabled;
        self
    }

    /// Compaction trigger rule (PR 8): after a mutation dispatch, if the
    /// graph's pending delta log holds at least `depth` entries, the
    /// service folds it into fresh tiles with
    /// [`Matrix::compact`](bitgblas_core::Matrix::compact) (default:
    /// disabled — the owner compacts explicitly).  The fold runs under a
    /// panic guard and fires the `grb.delta_merge` fail point: a failing
    /// compaction is contained and the pre-compaction epoch stays fully
    /// readable.
    pub fn compact_after(mut self, depth: usize) -> Self {
        self.compact_after = Some(depth.max(1));
        self
    }

    /// Build the service.  Installs the fault injector (if any) on the
    /// graph's context, so core-level fail points fire for this graph's
    /// executions.
    pub fn build(self) -> GraphService<'g> {
        if let Some(inj) = &self.fault {
            self.graph.context().set_fault_injector(Some(inj.clone()));
        }
        GraphService {
            graph: self.graph,
            max_lanes: self.max_lanes,
            window: self.window,
            capacity: self.capacity,
            direction: self.direction,
            fault: self.fault,
            breaker_cfg: self.breaker_cfg,
            retry_max: self.retry_max,
            backoff_base: self.backoff_base,
            feasibility: self.feasibility,
            compact_after: self.compact_after,
            groups: Vec::new(),
            breakers: Vec::new(),
            pending_count: 0,
            completed: HashMap::new(),
            next_ticket: 0,
            stats: ServiceStats::default(),
        }
    }
}

/// How one dispatched lane resolved.
#[derive(Debug)]
enum LaneOutcome {
    Done(QueryResult),
    Transient,
    Poisoned,
}

/// How one engine call over a contiguous lane segment ended.
enum SegmentOutcome {
    Done(Vec<QueryResult>),
    Transient,
    Panicked,
}

/// A serving layer over one graph: coalesces independent arriving queries
/// into `k ≤ 64`-lane batched executions on the multi-source engine,
/// contains execution faults, and demuxes per-lane results back to
/// per-query tickets.
///
/// See the [crate docs](crate) for a worked example and the [module
/// docs](self) for the scheduling and failure models.
#[derive(Debug)]
pub struct GraphService<'g> {
    graph: &'g Matrix,
    max_lanes: usize,
    window: u64,
    capacity: usize,
    direction: Direction,
    fault: Option<Arc<FaultInjector>>,
    breaker_cfg: Option<(u32, u64)>,
    retry_max: u32,
    backoff_base: u64,
    feasibility: bool,
    compact_after: Option<usize>,
    /// Coalescing groups in first-appearance order (a `Vec`, not a
    /// `HashMap`, so dispatch order is deterministic for a deterministic
    /// drive).  Entries keep FIFO arrival order.
    groups: Vec<(CoalescingKey, VecDeque<Pending>)>,
    /// Breaker state per coalescing key (persists after a group drains).
    breakers: Vec<(CoalescingKey, CircuitBreaker)>,
    pending_count: usize,
    completed: HashMap<Ticket, Result<QueryResult, QueryError>>,
    next_ticket: u64,
    stats: ServiceStats,
}

impl<'g> GraphService<'g> {
    /// Start building a service over `graph` with default policy (64 lanes,
    /// window 1000 ticks, capacity 1024, [`Direction::Auto`], no fault
    /// injector, breaker disabled, 2 retries with base-8 backoff,
    /// feasibility admission off).
    pub fn builder(graph: &'g Matrix) -> GraphServiceBuilder<'g> {
        GraphServiceBuilder {
            graph,
            max_lanes: MAX_BATCH_LANES,
            window: 1000,
            capacity: 1024,
            direction: Direction::Auto,
            fault: None,
            breaker_cfg: None,
            retry_max: 2,
            backoff_base: 8,
            feasibility: false,
            compact_after: None,
        }
    }

    /// Admit a query at tick `now` with an optional dispatch deadline.
    ///
    /// Admission is where fault containment starts: a full queue refuses
    /// the query ([`SubmitError::QueueFull`]) instead of buffering without
    /// bound, a deadline at or before `now` is refused outright
    /// ([`SubmitError::DeadlineBeforeSubmission`]), an out-of-range source
    /// never reaches the engine ([`SubmitError::SourceOutOfRange`]), an
    /// open circuit breaker fails fast ([`SubmitError::CircuitOpen`]), and
    /// — when [`deadline_feasibility`](GraphServiceBuilder::deadline_feasibility)
    /// is on — a deadline the observed wait distribution says cannot be
    /// met is refused at the door ([`SubmitError::InfeasibleDeadline`]).
    pub fn submit(
        &mut self,
        query: Query,
        now: Tick,
        deadline: Option<Tick>,
    ) -> Result<Ticket, SubmitError> {
        let n = self.graph.nrows();
        if query.source() >= n {
            return Err(SubmitError::SourceOutOfRange {
                source: query.source(),
                n,
            });
        }
        // A mutation names two vertices; its row is covered by the source
        // check above, its column is validated here so a bad delta never
        // reaches the writer path.
        if let Query::Mutate { delta } = query {
            if delta.col >= self.graph.ncols() {
                return Err(SubmitError::SourceOutOfRange {
                    source: delta.col,
                    n: self.graph.ncols(),
                });
            }
        }
        let key = query.coalescing_key();
        if self.breaker_cfg.is_some() {
            if let Admission::Refuse { until } = self.breaker_mut(key).admission(now) {
                self.stats.record_rejected_circuit_open();
                return Err(SubmitError::CircuitOpen { until });
            }
        }
        if let Some(d) = deadline {
            if d <= now {
                self.stats.record_rejected_bad_deadline();
                return Err(SubmitError::DeadlineBeforeSubmission { deadline: d, now });
            }
            if self.feasibility {
                let predicted = now.after(self.stats.snapshot().wait_p99());
                if predicted > d {
                    self.stats.record_rejected_infeasible();
                    return Err(SubmitError::InfeasibleDeadline {
                        deadline: d,
                        predicted,
                    });
                }
            }
        }
        if self.pending_count >= self.capacity {
            self.stats.record_rejected_queue_full();
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let pending = Pending {
            ticket,
            query,
            arrival: now,
            deadline,
            attempts: 0,
            not_before: now,
        };
        match self.groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, q)) => q.push_back(pending),
            None => {
                let mut q = VecDeque::new();
                q.push_back(pending);
                self.groups.push((key, q));
            }
        }
        self.pending_count += 1;
        self.stats.record_enqueued(self.pending_count);
        Ok(ticket)
    }

    /// Advance the service to tick `now`: expire overdue queries (typed
    /// error completion), then dispatch every ready batch.  Returns one
    /// [`BatchReport`] per dispatched batch, in dispatch order.
    pub fn pump(&mut self, now: Tick) -> Vec<BatchReport> {
        self.expire(now);
        let mut reports = Vec::new();
        while let Some(gi) = self
            .groups
            .iter()
            .position(|(_, q)| self.group_ready(q, now))
        {
            if let Some(report) = self.dispatch(gi, now, false) {
                reports.push(report);
            }
        }
        self.groups.retain(|(_, q)| !q.is_empty());
        reports
    }

    /// Dispatch everything still pending regardless of window, occupancy
    /// or retry backoff (end-of-stream drain).  Expired queries still
    /// complete with the typed error, exactly as in
    /// [`pump`](GraphService::pump); retry budgets still apply, so the
    /// drain terminates even under a 100%-transient fault plan.
    pub fn flush(&mut self, now: Tick) -> Vec<BatchReport> {
        self.expire(now);
        let mut reports = Vec::new();
        while let Some(gi) = self.groups.iter().position(|(_, q)| !q.is_empty()) {
            if let Some(report) = self.dispatch(gi, now, true) {
                reports.push(report);
            }
        }
        self.groups.retain(|(_, q)| !q.is_empty());
        reports
    }

    /// The earliest tick at which some pending group becomes ready —
    /// accounting for retry backoff: a lane waiting out its backoff
    /// contributes candidates at its eligibility tick.  `None` when
    /// nothing is pending — drivers step their clock event-to-event with
    /// this instead of polling.
    pub fn next_event_time(&self) -> Option<Tick> {
        self.groups
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .filter_map(|(_, q)| self.group_next_event(q))
            .min()
    }

    /// Redeem a ticket: `Some(Ok(result))` once the query's batch ran,
    /// `Some(Err(QueryError))` if it expired, terminally failed or was
    /// shed, `None` while it is still pending (or was already taken).  The
    /// slot is consumed.
    pub fn take_result(&mut self, ticket: Ticket) -> Option<Result<QueryResult, QueryError>> {
        self.completed.remove(&ticket)
    }

    /// Number of queries waiting in coalescing groups (including lanes
    /// waiting out a retry backoff).
    pub fn pending_len(&self) -> usize {
        self.pending_count
    }

    /// `true` when no query is waiting (completed-but-unclaimed results may
    /// still be held).
    pub fn is_idle(&self) -> bool {
        self.pending_count == 0
    }

    /// The service metrics (lock-free counters — readable from any thread).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The circuit-breaker state for `key` at `now`, or `None` when the
    /// breaker is disabled or the key has never dispatched.
    pub fn breaker_state(&mut self, key: CoalescingKey, now: Tick) -> Option<BreakerState> {
        self.breaker_cfg?;
        self.breakers
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, b)| b.state(now))
    }

    /// The graph this service answers queries about.
    pub fn graph(&self) -> &'g Matrix {
        self.graph
    }

    // -- internals ----------------------------------------------------------

    /// The breaker for `key`, created on first touch.
    fn breaker_mut(&mut self, key: CoalescingKey) -> &mut CircuitBreaker {
        let (threshold, cooldown) = self.breaker_cfg.unwrap_or((u32::MAX, 0));
        if let Some(i) = self.breakers.iter().position(|(k, _)| *k == key) {
            return &mut self.breakers[i].1;
        }
        self.breakers
            .push((key, CircuitBreaker::new(threshold, cooldown)));
        &mut self.breakers.last_mut().unwrap().1
    }

    /// Complete every pending query whose deadline has passed (`now` is
    /// strictly beyond it) with the typed expiry error.
    fn expire(&mut self, now: Tick) {
        let mut expired: Vec<(Ticket, Tick)> = Vec::new();
        for (_, q) in &mut self.groups {
            q.retain(|p| match p.deadline {
                Some(d) if now > d => {
                    expired.push((p.ticket, d));
                    false
                }
                _ => true,
            });
        }
        for (ticket, deadline) in expired {
            self.pending_count -= 1;
            self.completed
                .insert(ticket, Err(QueryError::DeadlineExpired { deadline, now }));
            self.stats.record_deadline_miss(self.pending_count);
        }
    }

    /// Is this group dispatchable at `now`?  (Holds an eligible query and
    /// is full, window-closed, or deadline-due among the eligible.)
    fn group_ready(&self, q: &VecDeque<Pending>, now: Tick) -> bool {
        let mut eligible = 0usize;
        let mut oldest: Option<Tick> = None;
        let mut deadline_due = false;
        for p in q {
            if p.not_before > now {
                continue;
            }
            eligible += 1;
            oldest = Some(oldest.map_or(p.arrival, |o| o.min(p.arrival)));
            deadline_due |= p.deadline.is_some_and(|d| now >= d);
        }
        match oldest {
            None => false,
            Some(oldest) => {
                eligible >= self.max_lanes || now >= oldest.after(self.window) || deadline_due
            }
        }
    }

    /// The earliest tick at which this (non-empty) group can become ready:
    /// the min over the full-batch candidate (the `max_lanes`-th smallest
    /// eligibility tick), each member's window close `max(eᵢ, arrivalᵢ +
    /// window)`, and each member's deadline `max(eᵢ, dᵢ)` (which also
    /// covers late expiry detection when the backoff outlives the
    /// deadline).
    fn group_next_event(&self, q: &VecDeque<Pending>) -> Option<Tick> {
        let mut cand: Option<Tick> = None;
        let mut fold = |t: Tick| cand = Some(cand.map_or(t, |c| c.min(t)));
        if q.len() >= self.max_lanes {
            let mut eligibles: Vec<Tick> = q.iter().map(|p| p.not_before).collect();
            eligibles.sort_unstable();
            fold(eligibles[self.max_lanes - 1]);
        }
        for p in q {
            fold(p.not_before.max(p.arrival.after(self.window)));
            if let Some(d) = p.deadline {
                fold(p.not_before.max(d));
            }
        }
        cand
    }

    /// Resolve every query still queued in group `gi` with the typed
    /// [`QueryError::Shed`] (circuit-breaker trip).
    fn shed_group(&mut self, gi: usize, until: Tick) {
        let (_, queue) = &mut self.groups[gi];
        let victims: Vec<Ticket> = queue.drain(..).map(|p| p.ticket).collect();
        for ticket in victims {
            self.pending_count -= 1;
            self.completed
                .insert(ticket, Err(QueryError::Shed { until }));
            self.stats.record_shed(1);
        }
    }

    /// Drain up to the lane cap of *eligible* queries off group `gi`
    /// (FIFO), execute them under the panic guard (bisecting on panic),
    /// resolve / retry each lane, and update the group's breaker.
    ///
    /// Returns `None` only when the breaker refuses the dispatch (the
    /// queue is shed instead).
    fn dispatch(&mut self, gi: usize, now: Tick, ignore_backoff: bool) -> Option<BatchReport> {
        let key = self.groups[gi].0;
        let cap = match self
            .breaker_cfg
            .map(|_| self.breaker_mut(key).admission(now))
        {
            Some(Admission::Refuse { until }) => {
                // Unreachable in normal operation (a trip sheds the queue
                // and an open breaker refuses submissions), kept as a
                // defensive guarantee that an open group never executes.
                self.shed_group(gi, until);
                return None;
            }
            Some(Admission::Probe) => 1,
            Some(Admission::Allow) | None => self.max_lanes,
        };

        let queue = &mut self.groups[gi].1;
        let mut batch: Vec<Pending> = Vec::new();
        let mut i = 0;
        while i < queue.len() && batch.len() < cap {
            if ignore_backoff || queue[i].not_before <= now {
                batch.push(queue.remove(i).unwrap());
            } else {
                i += 1;
            }
        }
        debug_assert!(
            !batch.is_empty(),
            "dispatch on a group with no eligible lane"
        );
        let k = batch.len();
        self.pending_count -= k;

        // Pre-sample the per-lane fail point ONCE per dispatch, so the
        // bisection search re-derives the same panics from these marks
        // instead of drawing fresh randomness on every probe — that is
        // what makes the search deterministic and guarantees it converges
        // on the poison lane.
        let mut panic_marks = vec![false; k];
        let mut extra_us = 0u64;
        let mut outcomes: Vec<Option<LaneOutcome>> = (0..k).map(|_| None).collect();
        if let Some(inj) = &self.fault {
            for (i, p) in batch.iter().enumerate() {
                match inj.fire("serve.lane", Some(p.query.source())) {
                    Some(FaultAction::Panic) => panic_marks[i] = true,
                    Some(FaultAction::Transient) => outcomes[i] = Some(LaneOutcome::Transient),
                    Some(FaultAction::Latency(us)) => extra_us += us,
                    None => {}
                }
            }
        }

        // Execute the lanes not already marked transient, as one guarded
        // engine call that bisects on panic.  Traversal segments read the
        // snapshot pinned HERE, once per dispatch: every lane of the batch
        // (including bisection re-executions) observes one epoch,
        // bit-stable no matter what the writer path publishes meanwhile.
        let snap = self.graph.snapshot();
        let exec_idx: Vec<usize> = (0..k).filter(|&i| outcomes[i].is_none()).collect();
        let seg: Vec<(Query, bool)> = exec_idx
            .iter()
            .map(|&i| (batch[i].query, panic_marks[i]))
            .collect();
        let started = std::time::Instant::now();
        let mut panicked = false;
        if !seg.is_empty() {
            let resolved = self.run_bisecting(&snap, key, &seg, &mut panicked, true);
            for (slot, outcome) in exec_idx.into_iter().zip(resolved) {
                outcomes[slot] = Some(outcome);
            }
        }
        let exec_us = started.elapsed().as_micros() as u64 + extra_us;

        // Resolve each lane: complete, terminally fail, or requeue with
        // exponential backoff on the virtual clock.
        let mut tickets = Vec::with_capacity(k);
        let mut n_completed = 0usize;
        let mut n_failed = 0usize;
        let mut requeue: Vec<Pending> = Vec::new();
        for (mut p, outcome) in batch.iter().copied().zip(outcomes) {
            tickets.push(p.ticket);
            match outcome.expect("every lane resolves") {
                LaneOutcome::Done(result) => {
                    self.completed.insert(p.ticket, Ok(result));
                    n_completed += 1;
                }
                LaneOutcome::Poisoned => {
                    self.completed.insert(
                        p.ticket,
                        Err(QueryError::ExecutionFailed {
                            reason: FailureReason::Panicked,
                        }),
                    );
                    n_failed += 1;
                }
                LaneOutcome::Transient => {
                    p.attempts += 1;
                    if p.attempts > self.retry_max {
                        self.completed.insert(
                            p.ticket,
                            Err(QueryError::ExecutionFailed {
                                reason: FailureReason::RetriesExhausted {
                                    attempts: p.attempts,
                                },
                            }),
                        );
                        n_failed += 1;
                    } else {
                        p.not_before = now.after(self.backoff_base << (p.attempts - 1));
                        requeue.push(p);
                    }
                }
            }
        }
        let n_retried = requeue.len();
        for p in requeue {
            self.groups[gi].1.push_back(p);
            self.pending_count += 1;
        }

        self.stats.record_completed(n_completed);
        self.stats.record_failed(n_failed);
        self.stats.record_retry(n_retried);
        self.stats.record_batch(
            k,
            batch.iter().map(|p| now.0.saturating_sub(p.arrival.0)),
            self.pending_count,
        );

        // Compaction trigger rule: after a mutation dispatch, fold the log
        // once it is deep enough.  Runs OUTSIDE the lane machinery (never
        // inside a bisectable segment, so a panicking fold can never
        // double-apply deltas) under its own panic guard: a failing
        // compaction is contained, the log and the published epoch are
        // untouched, and the next mutation dispatch simply retries.
        if key == CoalescingKey::Mutate {
            if let Some(depth) = self.compact_after {
                if self.graph.delta_len() >= depth {
                    let guarded = catch_unwind(AssertUnwindSafe(|| {
                        self.graph.compact(self.graph.context())
                    }));
                    if let Ok(Ok(_report)) = guarded {
                        self.stats.record_compaction();
                        self.stats.record_epoch_published();
                    }
                }
            }
        }

        // Batch-level breaker accounting: any caught panic is a failure,
        // a panic-free dispatch is a success.  A trip sheds what is left
        // of the group's queue (typed completion, never a silent drop).
        if self.breaker_cfg.is_some() {
            if panicked {
                if let Some(until) = self.breaker_mut(key).on_failure(now) {
                    self.stats.record_breaker_trip();
                    self.shed_group(gi, until);
                }
            } else {
                self.breaker_mut(key).on_success();
            }
        }

        Some(BatchReport {
            key,
            lanes: k,
            exec_us,
            tickets,
        })
    }

    /// Execute `seg` (source, presampled-panic-mark pairs) as one guarded
    /// engine call; on panic, bisect into halves until the poison lane is
    /// a singleton.  Innocent lanes complete with their results; the
    /// culprit resolves [`LaneOutcome::Poisoned`]; a typed engine error
    /// resolves the whole segment [`LaneOutcome::Transient`].
    fn run_bisecting(
        &self,
        snap: &Snapshot,
        key: CoalescingKey,
        seg: &[(Query, bool)],
        panicked: &mut bool,
        top_level: bool,
    ) -> Vec<LaneOutcome> {
        if !top_level {
            self.stats.record_bisection_dispatch();
        }
        match self.run_segment(snap, key, seg) {
            SegmentOutcome::Done(lanes) => lanes.into_iter().map(LaneOutcome::Done).collect(),
            SegmentOutcome::Transient => seg.iter().map(|_| LaneOutcome::Transient).collect(),
            SegmentOutcome::Panicked => {
                *panicked = true;
                self.stats.record_panic_contained();
                if seg.len() == 1 {
                    vec![LaneOutcome::Poisoned]
                } else {
                    let mid = seg.len() / 2;
                    let mut outcomes = self.run_bisecting(snap, key, &seg[..mid], panicked, false);
                    outcomes.extend(self.run_bisecting(snap, key, &seg[mid..], panicked, false));
                    outcomes
                }
            }
        }
    }

    /// One guarded engine call over a lane segment.  The panic guard is
    /// what keeps a poisoned lane from taking the service down: pooled
    /// workspace buffers are owned `Vec`s (no lock is held across kernel
    /// execution), so unwinding through the engine leaves the context
    /// usable.
    ///
    /// Traversal segments read `snap` — the epoch pinned at dispatch.
    /// Mutation segments write the *live* graph: the fail points fire
    /// first and the whole segment then lands as one atomic
    /// [`Matrix::apply_deltas`] append, so under bisection each innocent
    /// lane's delta is applied exactly once (a marked or panicking segment
    /// aborts before anything is appended) and a transiently-failed
    /// segment retries without having applied anything.
    fn run_segment(
        &self,
        snap: &Snapshot,
        key: CoalescingKey,
        seg: &[(Query, bool)],
    ) -> SegmentOutcome {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if seg.iter().any(|&(_, mark)| mark) {
                std::panic::panic_any(InjectedPanic {
                    point: "serve.lane",
                });
            }
            if let Some(inj) = &self.fault {
                match inj.fire("serve.batch", None) {
                    Some(FaultAction::Panic) => std::panic::panic_any(InjectedPanic {
                        point: "serve.batch",
                    }),
                    Some(FaultAction::Transient) => {
                        return Err(GrbError::FaultInjected {
                            point: "serve.batch",
                        })
                    }
                    Some(FaultAction::Latency(_)) | None => {}
                }
            }
            if key == CoalescingKey::Mutate {
                let deltas: Vec<EdgeDelta> = seg
                    .iter()
                    .map(|&(q, _)| match q {
                        Query::Mutate { delta } => delta,
                        _ => unreachable!("non-mutation query in a Mutate group"),
                    })
                    .collect();
                let epoch = self.graph.apply_deltas(&deltas)?;
                self.stats.record_mutations_applied(deltas.len());
                self.stats.record_epoch_published();
                return Ok(seg.iter().map(|_| QueryResult::Mutated { epoch }).collect());
            }
            let sources: Vec<usize> = seg.iter().map(|&(q, _)| q.source()).collect();
            try_execute_batch(snap, self.direction, key, &sources)
        }));
        match result {
            Ok(Ok(lanes)) => SegmentOutcome::Done(lanes),
            Ok(Err(_)) => SegmentOutcome::Transient,
            Err(_payload) => SegmentOutcome::Panicked,
        }
    }
}

/// Run one coalesced batch on the batched engine and split the `n × k`
/// result into per-lane [`QueryResult`]s (lane order = `sources` order).
/// A typed engine error (e.g. an injected transient at a core dispatch
/// point) fails the whole call — the service retries the lanes.
fn try_execute_batch(
    graph: &Matrix,
    direction: Direction,
    key: CoalescingKey,
    sources: &[usize],
) -> Result<Vec<QueryResult>, GrbError> {
    let k = sources.len();
    Ok(match key {
        CoalescingKey::Bfs => {
            let r = try_bfs_multi_dir(graph, sources, direction)?;
            (0..k)
                .map(|l| QueryResult::Bfs {
                    levels: unflatten(&r.levels, k, l),
                })
                .collect()
        }
        CoalescingKey::Sssp => {
            let r = try_sssp_multi_dir(graph, sources, direction)?;
            (0..k)
                .map(|l| QueryResult::Sssp {
                    distances: unflatten(&r.distances, k, l),
                })
                .collect()
        }
        CoalescingKey::Ppr {
            alpha_bits,
            iterations,
            fused,
        } => {
            let config = PprConfig {
                alpha: f32::from_bits(alpha_bits),
                iterations,
                fusion: if fused {
                    Fusion::Fused
                } else {
                    Fusion::NodeAtATime
                },
            };
            let r = try_ppr_multi_dir(graph, sources, &config, direction)?;
            (0..k)
                .map(|l| QueryResult::Ppr {
                    scores: unflatten(&r.scores, k, l),
                })
                .collect()
        }
        // Mutation segments never reach the batched read engine: the
        // service applies them on the live graph in `run_segment`.
        CoalescingKey::Mutate => unreachable!("mutations are applied by the writer path"),
    })
}

/// Copy lane `l` out of a flat node-major `n × k` result matrix.
fn unflatten<T: Copy>(flat: &[T], k: usize, l: usize) -> Vec<T> {
    flat.iter().skip(l).step_by(k).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_algorithms::{bfs, ppr, sssp};
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;

    fn graph() -> Matrix {
        Matrix::from_csr(
            &generators::erdos_renyi(80, 0.05, true, 3),
            Backend::Bit(TileSize::S8),
        )
    }

    #[test]
    fn window_close_dispatches_a_lone_query() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(100).build();
        let t = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        // Before the window closes nothing is ready.
        assert!(svc.pump(Tick(99)).is_empty());
        assert_eq!(svc.take_result(t), None);
        assert_eq!(svc.next_event_time(), Some(Tick(100)));
        // At the close it dispatches as a 1-lane batch.
        let reports = svc.pump(Tick(100));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].lanes, 1);
        let got = svc.take_result(t).unwrap().unwrap();
        assert_eq!(
            got,
            QueryResult::Bfs {
                levels: bfs(&g, 0).levels
            }
        );
    }

    #[test]
    fn full_batch_dispatches_before_the_window() {
        let g = graph();
        let mut svc = GraphService::builder(&g)
            .max_lanes(4)
            .coalescing_window(1_000_000)
            .build();
        let tickets: Vec<Ticket> = (0..9)
            .map(|i| svc.submit(Query::sssp(i), Tick(i as u64), None).unwrap())
            .collect();
        // 9 pending, cap 4: two full batches are ready, one remainder waits.
        let reports = svc.pump(Tick(10));
        assert_eq!(reports.iter().map(|r| r.lanes).collect::<Vec<_>>(), [4, 4]);
        assert_eq!(svc.pending_len(), 1);
        // FIFO: the first 8 tickets completed, the 9th still pending.
        for &t in &tickets[..8] {
            assert!(svc.take_result(t).is_some());
        }
        assert!(svc.take_result(tickets[8]).is_none());
        // The remainder leaves on flush.
        let drained = svc.flush(Tick(11));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].lanes, 1);
        assert!(svc.is_idle());
    }

    #[test]
    fn incompatible_queries_do_not_share_a_batch() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(10).build();
        let _ = svc.submit(Query::bfs(1), Tick(0), None).unwrap();
        let _ = svc.submit(Query::sssp(1), Tick(0), None).unwrap();
        let _ = svc.submit(Query::ppr(1), Tick(0), None).unwrap();
        let _ = svc.submit(Query::bfs(2), Tick(0), None).unwrap();
        let reports = svc.pump(Tick(10));
        assert_eq!(reports.len(), 3, "three coalescing groups");
        let bfs_batch = reports
            .iter()
            .find(|r| r.key == CoalescingKey::Bfs)
            .unwrap();
        assert_eq!(bfs_batch.lanes, 2, "the two BFS queries coalesced");
    }

    #[test]
    fn results_match_standalone_runs() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(5).build();
        let tb = svc.submit(Query::bfs(7), Tick(0), None).unwrap();
        let ts = svc.submit(Query::sssp(7), Tick(0), None).unwrap();
        let tp = svc.submit(Query::ppr(7), Tick(0), None).unwrap();
        svc.pump(Tick(5));
        match svc.take_result(tb).unwrap().unwrap() {
            QueryResult::Bfs { levels } => assert_eq!(levels, bfs(&g, 7).levels),
            other => panic!("wrong result kind {other:?}"),
        }
        match svc.take_result(ts).unwrap().unwrap() {
            QueryResult::Sssp { distances } => {
                assert_eq!(distances, sssp(&g, 7).distances)
            }
            other => panic!("wrong result kind {other:?}"),
        }
        match svc.take_result(tp).unwrap().unwrap() {
            QueryResult::Ppr { scores } => {
                assert_eq!(scores, ppr(&g, 7, &PprConfig::default()).scores)
            }
            other => panic!("wrong result kind {other:?}"),
        }
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let g = graph();
        let mut svc = GraphService::builder(&g)
            .queue_capacity(2)
            .coalescing_window(100)
            .build();
        let _ = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        let _ = svc.submit(Query::bfs(1), Tick(0), None).unwrap();
        let err = svc.submit(Query::bfs(2), Tick(0), None).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        // Dispatch frees the slots.
        svc.pump(Tick(100));
        assert!(svc.submit(Query::bfs(2), Tick(101), None).is_ok());
        let s = svc.stats().snapshot();
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.enqueued, 3);
    }

    #[test]
    fn bad_submissions_are_refused() {
        let g = graph();
        let mut svc = GraphService::builder(&g).build();
        assert_eq!(
            svc.submit(Query::bfs(999), Tick(0), None).unwrap_err(),
            SubmitError::SourceOutOfRange { source: 999, n: 80 }
        );
        assert_eq!(
            svc.submit(Query::bfs(0), Tick(5), Some(Tick(5)))
                .unwrap_err(),
            SubmitError::DeadlineBeforeSubmission {
                deadline: Tick(5),
                now: Tick(5)
            }
        );
        assert_eq!(svc.stats().snapshot().rejected_bad_deadline, 1);
    }

    #[test]
    fn deadline_due_dispatches_early_and_takes_batchmates_along() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(1000).build();
        let urgent = svc.submit(Query::bfs(0), Tick(0), Some(Tick(50))).unwrap();
        let casual = svc.submit(Query::bfs(1), Tick(10), None).unwrap();
        // Well before the 1000-tick window, the deadline forces dispatch —
        // and the compatible casual query rides along (occupancy 2).
        assert_eq!(svc.next_event_time(), Some(Tick(50)));
        assert!(svc.pump(Tick(49)).is_empty());
        let reports = svc.pump(Tick(50));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].lanes, 2);
        assert!(svc.take_result(urgent).unwrap().is_ok());
        assert!(svc.take_result(casual).unwrap().is_ok());
        assert_eq!(svc.stats().snapshot().deadline_misses, 0);
    }

    #[test]
    fn stats_track_occupancy_and_waits() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(64).build();
        let _ = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        let _ = svc.submit(Query::bfs(1), Tick(32), None).unwrap();
        svc.pump(Tick(64));
        let _ = svc.submit(Query::sssp(2), Tick(100), None).unwrap();
        svc.pump(Tick(164));
        let s = svc.stats().snapshot();
        assert_eq!(s.batches_dispatched, 2);
        assert_eq!(s.lanes_dispatched, 3);
        assert_eq!(s.max_batch_lanes, 2);
        assert_eq!(s.completed, 3);
        assert!(s.is_conserved());
        assert!((s.mean_batch_occupancy() - 1.5).abs() < 1e-12);
        // Waits 64, 32, 64 → p50/p99 in the [64, 128) bucket.
        assert_eq!(s.wait_p50(), 128);
        assert_eq!(s.wait_p99(), 128);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.peak_queue_depth, 2);
    }

    #[test]
    fn mutations_coalesce_and_publish_one_epoch_per_batch() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(10).build();
        let ta = svc
            .submit(Query::insert_edge(0, 79), Tick(0), None)
            .unwrap();
        let tb = svc
            .submit(Query::insert_edge(79, 0), Tick(0), None)
            .unwrap();
        let tc = svc
            .submit(Query::delete_edge(0, 79), Tick(0), None)
            .unwrap();
        let reports = svc.pump(Tick(10));
        assert_eq!(reports.len(), 1, "mutations coalesce into one batch");
        assert_eq!(reports[0].key, CoalescingKey::Mutate);
        assert_eq!(reports[0].lanes, 3);
        // One atomic append → every lane resolves the same epoch.
        for t in [ta, tb, tc] {
            assert_eq!(
                svc.take_result(t).unwrap().unwrap(),
                QueryResult::Mutated { epoch: 1 }
            );
        }
        // Last-op-wins within the batch: (0,79) inserted then deleted.
        let snap = g.snapshot();
        assert!(snap.csr().get(79, 0).is_some());
        assert!(snap.csr().get(0, 79).is_none());
        let s = svc.stats().snapshot();
        assert_eq!(s.mutations_applied, 3);
        assert_eq!(s.epochs_published, 1);
        assert!(s.is_conserved());
    }

    #[test]
    fn traversals_read_the_snapshot_pinned_at_their_own_dispatch() {
        // A directed chain 0→1→2 with vertex 3 unreachable from 0.
        let mut coo = bitgblas_sparse::Coo::new(8, 8);
        coo.push_edge(0, 1).unwrap();
        coo.push_edge(1, 2).unwrap();
        let g = Matrix::from_csr(&coo.to_binary_csr(), Backend::Bit(TileSize::S8));
        let baseline = bfs(&g, 0).levels;
        assert_eq!(baseline[3], -1);
        let mut svc = GraphService::builder(&g).coalescing_window(0).build();
        // Dispatch a BFS, then a mutation, then another BFS: the first read
        // must match the pre-mutation graph, the second the post-mutation
        // one — each dispatch pins its own epoch.
        let t1 = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        svc.pump(Tick(0));
        let tm = svc.submit(Query::insert_edge(0, 3), Tick(1), None).unwrap();
        let t2 = svc.submit(Query::bfs(0), Tick(1), None).unwrap();
        svc.pump(Tick(1));
        match svc.take_result(t1).unwrap().unwrap() {
            QueryResult::Bfs { levels } => assert_eq!(levels, baseline),
            other => panic!("wrong result kind {other:?}"),
        }
        assert!(svc.take_result(tm).unwrap().is_ok());
        match svc.take_result(t2).unwrap().unwrap() {
            QueryResult::Bfs { levels } => {
                assert_eq!(levels[3], 1, "post-mutation read sees the edge")
            }
            other => panic!("wrong result kind {other:?}"),
        }
        // The live handle itself still reads its construction-time view.
        assert_eq!(bfs(&g, 0).levels, baseline);
    }

    #[test]
    fn compact_after_folds_the_log_on_the_writer_path() {
        let g = graph();
        let mut svc = GraphService::builder(&g)
            .coalescing_window(0)
            .compact_after(2)
            .build();
        let _ = svc.submit(Query::insert_edge(1, 0), Tick(0), None).unwrap();
        svc.pump(Tick(0));
        // One pending delta: below the threshold, no fold.
        assert_eq!(g.delta_len(), 1);
        assert_eq!(svc.stats().snapshot().compactions, 0);
        let _ = svc.submit(Query::insert_edge(2, 0), Tick(1), None).unwrap();
        svc.pump(Tick(1));
        assert_eq!(g.delta_len(), 0, "threshold reached, log folded");
        let s = svc.stats().snapshot();
        assert_eq!(s.compactions, 1);
        assert_eq!(s.epochs_published, 3); // two mutation batches + one fold
        assert!(g.snapshot().b2sr().is_some(), "compaction re-tiled");
    }

    #[test]
    fn mutate_submissions_validate_both_endpoints() {
        let g = graph();
        let mut svc = GraphService::builder(&g).build();
        assert_eq!(
            svc.submit(Query::insert_edge(999, 0), Tick(0), None)
                .unwrap_err(),
            SubmitError::SourceOutOfRange { source: 999, n: 80 }
        );
        assert_eq!(
            svc.submit(Query::insert_edge(0, 999), Tick(0), None)
                .unwrap_err(),
            SubmitError::SourceOutOfRange { source: 999, n: 80 }
        );
    }

    #[test]
    fn repeated_sources_each_get_their_own_lane() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(1).build();
        let a = svc.submit(Query::bfs(5), Tick(0), None).unwrap();
        let b = svc.submit(Query::bfs(5), Tick(0), None).unwrap();
        svc.pump(Tick(1));
        let ra = svc.take_result(a).unwrap().unwrap();
        let rb = svc.take_result(b).unwrap().unwrap();
        assert_eq!(ra, rb);
    }
}
