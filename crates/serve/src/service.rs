//! The [`GraphService`]: admission, lane-coalescing, deadline-aware
//! dispatch and result demultiplexing.
//!
//! # Scheduling model
//!
//! The service is an explicitly-clocked event machine.  Producers
//! [`submit`](GraphService::submit) queries (admission: bounded queue with
//! backpressure, deadline sanity, source validation); a driver loop calls
//! [`pump`](GraphService::pump) with the current [`Tick`], and the service
//! dispatches every *ready* batch synchronously, demuxing per-lane results
//! into per-ticket slots redeemed with
//! [`take_result`](GraphService::take_result).  A group of compatible
//! pending queries (equal [`CoalescingKey`]) is ready when any of:
//!
//! * **full** — the group holds [`max_lanes`](GraphServiceBuilder::max_lanes)
//!   queries (a full lane word: dispatch cannot get cheaper per query);
//! * **window closed** — the group's *oldest* query has waited
//!   [`coalescing_window`](GraphServiceBuilder::coalescing_window) ticks (a
//!   lone query never waits longer than the window);
//! * **deadline reached** — some member's deadline is `now` (dispatching at
//!   the deadline is the last legal moment, so a query is never coalesced
//!   *past* its deadline; queries whose deadline already passed are
//!   completed with the typed [`QueryError::DeadlineExpired`] instead, never
//!   silently dropped).
//!
//! [`next_event_time`](GraphService::next_event_time) tells the driver the
//! earliest tick at which any of those conditions can fire, so drivers
//! (and the open-loop benchmark) can step the virtual clock event-to-event
//! without polling.
//!
//! The service itself never reads a wall clock — every scheduling decision
//! is a function of caller-supplied ticks, which is what makes the deadline
//! tests deterministic and the benchmark's arrival replay reproducible.
//! The only `Instant` use is *reporting*: each [`BatchReport`] carries the
//! measured execution time of its batch, which drivers may feed back into
//! their virtual clock (the open-loop harness does) but the scheduler never
//! consults.

use std::collections::HashMap;
use std::collections::VecDeque;

use bitgblas_algorithms::{bfs_multi_dir, ppr_multi_dir, sssp_multi_dir, PprConfig};
use bitgblas_core::grb::Direction;
use bitgblas_core::{Fusion, Matrix};

use crate::query::{CoalescingKey, Query, QueryError, QueryResult, SubmitError, Tick, Ticket};
use crate::stats::ServiceStats;

/// The hard lane cap: one `u64` lane word — a batch never exceeds 64
/// lanes, so every batched Boolean sweep advances the whole batch with one
/// OR per edge.
pub const MAX_BATCH_LANES: usize = 64;

/// One query waiting in a coalescing group.
#[derive(Debug, Clone, Copy)]
struct Pending {
    ticket: Ticket,
    query: Query,
    arrival: Tick,
    deadline: Option<Tick>,
}

/// What one [`pump`](GraphService::pump) dispatch executed.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The coalescing group the batch came from.
    pub key: CoalescingKey,
    /// Number of lanes (coalesced queries) in the batch.
    pub lanes: usize,
    /// Measured execution time of the batched engine call, in microseconds.
    /// Reporting only — the scheduler never reads it; drivers with a
    /// virtual clock may add it to their `now`.
    pub exec_us: u64,
    /// The tickets completed by this batch, in lane order.
    pub tickets: Vec<Ticket>,
}

/// Configures and builds a [`GraphService`] — see the [module
/// docs](self) for the scheduling model.
#[derive(Debug, Clone, Copy)]
pub struct GraphServiceBuilder<'g> {
    graph: &'g Matrix,
    max_lanes: usize,
    window: u64,
    capacity: usize,
    direction: Direction,
}

impl<'g> GraphServiceBuilder<'g> {
    /// Maximum lanes coalesced into one batch, clamped to
    /// `1..=`[`MAX_BATCH_LANES`] (default: 64 — one full lane word).
    pub fn max_lanes(mut self, k: usize) -> Self {
        self.max_lanes = k.clamp(1, MAX_BATCH_LANES);
        self
    }

    /// The coalescing window in ticks: the longest a query may sit waiting
    /// for batch-mates before the service dispatches anyway (default: 1000).
    /// `0` disables coalescing-by-waiting — every pump dispatches whatever
    /// is queued.
    pub fn coalescing_window(mut self, ticks: u64) -> Self {
        self.window = ticks;
        self
    }

    /// Bounded queue capacity across all coalescing groups (default: 1024).
    /// Submissions beyond it are refused with [`SubmitError::QueueFull`] —
    /// the service sheds load at the door instead of growing an unbounded
    /// backlog.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Traversal direction for the batched executions (default:
    /// [`Direction::Auto`] — per-iteration Beamer switching on the
    /// node-granular batch frontier).
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Build the service.
    pub fn build(self) -> GraphService<'g> {
        GraphService {
            graph: self.graph,
            max_lanes: self.max_lanes,
            window: self.window,
            capacity: self.capacity,
            direction: self.direction,
            groups: Vec::new(),
            pending_count: 0,
            completed: HashMap::new(),
            next_ticket: 0,
            stats: ServiceStats::default(),
        }
    }
}

/// A serving layer over one graph: coalesces independent arriving queries
/// into `k ≤ 64`-lane batched executions on the multi-source engine and
/// demuxes per-lane results back to per-query tickets.
///
/// See the [crate docs](crate) for a worked example and the [module
/// docs](self) for the scheduling policy.
#[derive(Debug)]
pub struct GraphService<'g> {
    graph: &'g Matrix,
    max_lanes: usize,
    window: u64,
    capacity: usize,
    direction: Direction,
    /// Coalescing groups in first-appearance order (a `Vec`, not a
    /// `HashMap`, so dispatch order is deterministic for a deterministic
    /// drive).  Entries keep FIFO arrival order.
    groups: Vec<(CoalescingKey, VecDeque<Pending>)>,
    pending_count: usize,
    completed: HashMap<Ticket, Result<QueryResult, QueryError>>,
    next_ticket: u64,
    stats: ServiceStats,
}

impl<'g> GraphService<'g> {
    /// Start building a service over `graph` with default policy (64 lanes,
    /// window 1000 ticks, capacity 1024, [`Direction::Auto`]).
    pub fn builder(graph: &'g Matrix) -> GraphServiceBuilder<'g> {
        GraphServiceBuilder {
            graph,
            max_lanes: MAX_BATCH_LANES,
            window: 1000,
            capacity: 1024,
            direction: Direction::Auto,
        }
    }

    /// Admit a query at tick `now` with an optional dispatch deadline.
    ///
    /// Admission is where backpressure lives: a full queue refuses the
    /// query ([`SubmitError::QueueFull`]) instead of buffering without
    /// bound, a deadline at or before `now` is refused outright
    /// ([`SubmitError::DeadlineBeforeSubmission`]), and an out-of-range
    /// source never reaches the engine
    /// ([`SubmitError::SourceOutOfRange`]).
    pub fn submit(
        &mut self,
        query: Query,
        now: Tick,
        deadline: Option<Tick>,
    ) -> Result<Ticket, SubmitError> {
        let n = self.graph.nrows();
        if query.source() >= n {
            return Err(SubmitError::SourceOutOfRange {
                source: query.source(),
                n,
            });
        }
        if let Some(d) = deadline {
            if d <= now {
                self.stats.record_rejected_bad_deadline();
                return Err(SubmitError::DeadlineBeforeSubmission { deadline: d, now });
            }
        }
        if self.pending_count >= self.capacity {
            self.stats.record_rejected_queue_full();
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let key = query.coalescing_key();
        let pending = Pending {
            ticket,
            query,
            arrival: now,
            deadline,
        };
        match self.groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, q)) => q.push_back(pending),
            None => {
                let mut q = VecDeque::new();
                q.push_back(pending);
                self.groups.push((key, q));
            }
        }
        self.pending_count += 1;
        self.stats.record_enqueued(self.pending_count);
        Ok(ticket)
    }

    /// Advance the service to tick `now`: expire overdue queries (typed
    /// error completion), then dispatch every ready batch.  Returns one
    /// [`BatchReport`] per dispatched batch, in dispatch order.
    pub fn pump(&mut self, now: Tick) -> Vec<BatchReport> {
        self.expire(now);
        let mut reports = Vec::new();
        while let Some(gi) = self
            .groups
            .iter()
            .position(|(_, q)| self.group_ready(q, now))
        {
            reports.push(self.dispatch(gi, now));
        }
        self.groups.retain(|(_, q)| !q.is_empty());
        reports
    }

    /// Dispatch everything still pending regardless of window/occupancy
    /// (end-of-stream drain).  Expired queries still complete with the
    /// typed error, exactly as in [`pump`](GraphService::pump).
    pub fn flush(&mut self, now: Tick) -> Vec<BatchReport> {
        self.expire(now);
        let mut reports = Vec::new();
        while let Some(gi) = self.groups.iter().position(|(_, q)| !q.is_empty()) {
            reports.push(self.dispatch(gi, now));
        }
        self.groups.retain(|(_, q)| !q.is_empty());
        reports
    }

    /// The earliest tick at which some pending group becomes ready (full
    /// groups report the arrival tick that filled them; otherwise the
    /// sooner of the window close and the earliest member deadline).
    /// `None` when nothing is pending — drivers step their clock
    /// event-to-event with this instead of polling.
    pub fn next_event_time(&self) -> Option<Tick> {
        self.groups
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(_, q)| {
                if q.len() >= self.max_lanes {
                    q[self.max_lanes - 1].arrival
                } else {
                    let close = q[0].arrival.after(self.window);
                    q.iter()
                        .filter_map(|p| p.deadline)
                        .min()
                        .map_or(close, |d| close.min(d))
                }
            })
            .min()
    }

    /// Redeem a ticket: `Some(Ok(result))` once the query's batch ran,
    /// `Some(Err(QueryError))` if it expired in queue, `None` while it is
    /// still pending (or was already taken).  The slot is consumed.
    pub fn take_result(&mut self, ticket: Ticket) -> Option<Result<QueryResult, QueryError>> {
        self.completed.remove(&ticket)
    }

    /// Number of queries waiting in coalescing groups.
    pub fn pending_len(&self) -> usize {
        self.pending_count
    }

    /// `true` when no query is waiting (completed-but-unclaimed results may
    /// still be held).
    pub fn is_idle(&self) -> bool {
        self.pending_count == 0
    }

    /// The service metrics (lock-free counters — readable from any thread).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The graph this service answers queries about.
    pub fn graph(&self) -> &'g Matrix {
        self.graph
    }

    // -- internals ----------------------------------------------------------

    /// Complete every pending query whose deadline has passed (`now` is
    /// strictly beyond it) with the typed expiry error.
    fn expire(&mut self, now: Tick) {
        let mut expired: Vec<(Ticket, Tick)> = Vec::new();
        for (_, q) in &mut self.groups {
            q.retain(|p| match p.deadline {
                Some(d) if now > d => {
                    expired.push((p.ticket, d));
                    false
                }
                _ => true,
            });
        }
        for (ticket, deadline) in expired {
            self.pending_count -= 1;
            self.completed
                .insert(ticket, Err(QueryError::DeadlineExpired { deadline, now }));
            self.stats.record_deadline_miss(self.pending_count);
        }
    }

    /// Is this group dispatchable at `now`?  (Full, window closed, or a
    /// member's deadline is due.)
    fn group_ready(&self, q: &VecDeque<Pending>, now: Tick) -> bool {
        if q.is_empty() {
            return false;
        }
        q.len() >= self.max_lanes
            || now >= q[0].arrival.after(self.window)
            || q.iter().any(|p| p.deadline.is_some_and(|d| now >= d))
    }

    /// Pop up to `max_lanes` queries off group `gi` (FIFO), execute them as
    /// one batched engine call, demux the lanes into completed slots.
    fn dispatch(&mut self, gi: usize, now: Tick) -> BatchReport {
        let (key, queue) = &mut self.groups[gi];
        let key = *key;
        let k = queue.len().min(self.max_lanes);
        let batch: Vec<Pending> = queue.drain(..k).collect();
        self.pending_count -= k;

        let sources: Vec<usize> = batch.iter().map(|p| p.query.source()).collect();
        let started = std::time::Instant::now();
        let lanes = execute_batch(self.graph, self.direction, key, &sources);
        let exec_us = started.elapsed().as_micros() as u64;

        let mut tickets = Vec::with_capacity(k);
        for (p, lane) in batch.iter().zip(lanes) {
            self.completed.insert(p.ticket, Ok(lane));
            tickets.push(p.ticket);
        }
        self.stats.record_batch(
            k,
            batch.iter().map(|p| now.0.saturating_sub(p.arrival.0)),
            self.pending_count,
        );
        BatchReport {
            key,
            lanes: k,
            exec_us,
            tickets,
        }
    }
}

/// Run one coalesced batch on the batched engine and split the `n × k`
/// result into per-lane [`QueryResult`]s (lane order = `sources` order).
fn execute_batch(
    graph: &Matrix,
    direction: Direction,
    key: CoalescingKey,
    sources: &[usize],
) -> Vec<QueryResult> {
    let k = sources.len();
    match key {
        CoalescingKey::Bfs => {
            let r = bfs_multi_dir(graph, sources, direction);
            (0..k)
                .map(|l| QueryResult::Bfs {
                    levels: unflatten(&r.levels, k, l),
                })
                .collect()
        }
        CoalescingKey::Sssp => {
            let r = sssp_multi_dir(graph, sources, direction);
            (0..k)
                .map(|l| QueryResult::Sssp {
                    distances: unflatten(&r.distances, k, l),
                })
                .collect()
        }
        CoalescingKey::Ppr {
            alpha_bits,
            iterations,
            fused,
        } => {
            let config = PprConfig {
                alpha: f32::from_bits(alpha_bits),
                iterations,
                fusion: if fused {
                    Fusion::Fused
                } else {
                    Fusion::NodeAtATime
                },
            };
            let r = ppr_multi_dir(graph, sources, &config, direction);
            (0..k)
                .map(|l| QueryResult::Ppr {
                    scores: unflatten(&r.scores, k, l),
                })
                .collect()
        }
    }
}

/// Copy lane `l` out of a flat node-major `n × k` result matrix.
fn unflatten<T: Copy>(flat: &[T], k: usize, l: usize) -> Vec<T> {
    flat.iter().skip(l).step_by(k).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_algorithms::{bfs, ppr, sssp};
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;

    fn graph() -> Matrix {
        Matrix::from_csr(
            &generators::erdos_renyi(80, 0.05, true, 3),
            Backend::Bit(TileSize::S8),
        )
    }

    #[test]
    fn window_close_dispatches_a_lone_query() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(100).build();
        let t = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        // Before the window closes nothing is ready.
        assert!(svc.pump(Tick(99)).is_empty());
        assert_eq!(svc.take_result(t), None);
        assert_eq!(svc.next_event_time(), Some(Tick(100)));
        // At the close it dispatches as a 1-lane batch.
        let reports = svc.pump(Tick(100));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].lanes, 1);
        let got = svc.take_result(t).unwrap().unwrap();
        assert_eq!(
            got,
            QueryResult::Bfs {
                levels: bfs(&g, 0).levels
            }
        );
    }

    #[test]
    fn full_batch_dispatches_before_the_window() {
        let g = graph();
        let mut svc = GraphService::builder(&g)
            .max_lanes(4)
            .coalescing_window(1_000_000)
            .build();
        let tickets: Vec<Ticket> = (0..9)
            .map(|i| svc.submit(Query::sssp(i), Tick(i as u64), None).unwrap())
            .collect();
        // 9 pending, cap 4: two full batches are ready, one remainder waits.
        let reports = svc.pump(Tick(10));
        assert_eq!(reports.iter().map(|r| r.lanes).collect::<Vec<_>>(), [4, 4]);
        assert_eq!(svc.pending_len(), 1);
        // FIFO: the first 8 tickets completed, the 9th still pending.
        for &t in &tickets[..8] {
            assert!(svc.take_result(t).is_some());
        }
        assert!(svc.take_result(tickets[8]).is_none());
        // The remainder leaves on flush.
        let drained = svc.flush(Tick(11));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].lanes, 1);
        assert!(svc.is_idle());
    }

    #[test]
    fn incompatible_queries_do_not_share_a_batch() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(10).build();
        svc.submit(Query::bfs(1), Tick(0), None).unwrap();
        svc.submit(Query::sssp(1), Tick(0), None).unwrap();
        svc.submit(Query::ppr(1), Tick(0), None).unwrap();
        svc.submit(Query::bfs(2), Tick(0), None).unwrap();
        let reports = svc.pump(Tick(10));
        assert_eq!(reports.len(), 3, "three coalescing groups");
        let bfs_batch = reports
            .iter()
            .find(|r| r.key == CoalescingKey::Bfs)
            .unwrap();
        assert_eq!(bfs_batch.lanes, 2, "the two BFS queries coalesced");
    }

    #[test]
    fn results_match_standalone_runs() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(5).build();
        let tb = svc.submit(Query::bfs(7), Tick(0), None).unwrap();
        let ts = svc.submit(Query::sssp(7), Tick(0), None).unwrap();
        let tp = svc.submit(Query::ppr(7), Tick(0), None).unwrap();
        svc.pump(Tick(5));
        match svc.take_result(tb).unwrap().unwrap() {
            QueryResult::Bfs { levels } => assert_eq!(levels, bfs(&g, 7).levels),
            other => panic!("wrong result kind {other:?}"),
        }
        match svc.take_result(ts).unwrap().unwrap() {
            QueryResult::Sssp { distances } => {
                assert_eq!(distances, sssp(&g, 7).distances)
            }
            other => panic!("wrong result kind {other:?}"),
        }
        match svc.take_result(tp).unwrap().unwrap() {
            QueryResult::Ppr { scores } => {
                assert_eq!(scores, ppr(&g, 7, &PprConfig::default()).scores)
            }
            other => panic!("wrong result kind {other:?}"),
        }
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let g = graph();
        let mut svc = GraphService::builder(&g)
            .queue_capacity(2)
            .coalescing_window(100)
            .build();
        svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        svc.submit(Query::bfs(1), Tick(0), None).unwrap();
        let err = svc.submit(Query::bfs(2), Tick(0), None).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        // Dispatch frees the slots.
        svc.pump(Tick(100));
        assert!(svc.submit(Query::bfs(2), Tick(101), None).is_ok());
        let s = svc.stats().snapshot();
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.enqueued, 3);
    }

    #[test]
    fn bad_submissions_are_refused() {
        let g = graph();
        let mut svc = GraphService::builder(&g).build();
        assert_eq!(
            svc.submit(Query::bfs(999), Tick(0), None).unwrap_err(),
            SubmitError::SourceOutOfRange { source: 999, n: 80 }
        );
        assert_eq!(
            svc.submit(Query::bfs(0), Tick(5), Some(Tick(5)))
                .unwrap_err(),
            SubmitError::DeadlineBeforeSubmission {
                deadline: Tick(5),
                now: Tick(5)
            }
        );
        assert_eq!(svc.stats().snapshot().rejected_bad_deadline, 1);
    }

    #[test]
    fn deadline_due_dispatches_early_and_takes_batchmates_along() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(1000).build();
        let urgent = svc.submit(Query::bfs(0), Tick(0), Some(Tick(50))).unwrap();
        let casual = svc.submit(Query::bfs(1), Tick(10), None).unwrap();
        // Well before the 1000-tick window, the deadline forces dispatch —
        // and the compatible casual query rides along (occupancy 2).
        assert_eq!(svc.next_event_time(), Some(Tick(50)));
        assert!(svc.pump(Tick(49)).is_empty());
        let reports = svc.pump(Tick(50));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].lanes, 2);
        assert!(svc.take_result(urgent).unwrap().is_ok());
        assert!(svc.take_result(casual).unwrap().is_ok());
        assert_eq!(svc.stats().snapshot().deadline_misses, 0);
    }

    #[test]
    fn stats_track_occupancy_and_waits() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(64).build();
        svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        svc.submit(Query::bfs(1), Tick(32), None).unwrap();
        svc.pump(Tick(64));
        svc.submit(Query::sssp(2), Tick(100), None).unwrap();
        svc.pump(Tick(164));
        let s = svc.stats().snapshot();
        assert_eq!(s.batches_dispatched, 2);
        assert_eq!(s.lanes_dispatched, 3);
        assert_eq!(s.max_batch_lanes, 2);
        assert!((s.mean_batch_occupancy() - 1.5).abs() < 1e-12);
        // Waits 64, 32, 64 → p50/p99 in the [64, 128) bucket.
        assert_eq!(s.wait_p50(), 128);
        assert_eq!(s.wait_p99(), 128);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.peak_queue_depth, 2);
    }

    #[test]
    fn repeated_sources_each_get_their_own_lane() {
        let g = graph();
        let mut svc = GraphService::builder(&g).coalescing_window(1).build();
        let a = svc.submit(Query::bfs(5), Tick(0), None).unwrap();
        let b = svc.submit(Query::bfs(5), Tick(0), None).unwrap();
        svc.pump(Tick(1));
        let ra = svc.take_result(a).unwrap().unwrap();
        let rb = svc.take_result(b).unwrap().unwrap();
        assert_eq!(ra, rb);
    }
}
