//! Lock-free service metrics, riding the `ExecStats` pattern of
//! `bitgblas-core`: every counter is a relaxed atomic the scheduler bumps
//! without taking any lock, and [`ServiceStats::snapshot`] returns a
//! plain-data [`ServiceCounts`] any observer thread can read concurrently
//! with the scheduler (the contention test below proves no bumps are lost).
//!
//! Queue-wait latency is recorded into a **fixed-bucket power-of-two
//! histogram** ([`WAIT_BUCKETS`] buckets, bucket `i` covering
//! `[2^(i-1), 2^i)` ticks, bucket 0 = zero wait) — no allocation, no
//! external histogram dependency, p50/p99 read off the cumulative counts
//! with one-bucket resolution.  Because the wait of a query is
//! `dispatch tick − arrival tick` on the caller-driven virtual clock, the
//! histogram is deterministic for a deterministic drive — the open-loop
//! benchmark's latency rows replay exactly.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of power-of-two wait buckets (covers waits up to `2^38` ticks —
/// at a microsecond tick, more than three days).
pub const WAIT_BUCKETS: usize = 40;

/// Bucket index of a wait of `ticks`: 0 holds zero-tick waits, bucket `i`
/// holds `[2^(i-1), 2^i)`.
fn bucket_of(ticks: u64) -> usize {
    ((64 - ticks.leading_zeros()) as usize).min(WAIT_BUCKETS - 1)
}

/// Monotonic counters of the service's lifecycle events, plus the
/// queue-depth gauge and the wait histogram.  All updates are relaxed
/// atomics — safe to read from any thread while the scheduler runs.
#[derive(Debug)]
pub struct ServiceStats {
    enqueued: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_bad_deadline: AtomicU64,
    rejected_circuit_open: AtomicU64,
    rejected_infeasible: AtomicU64,
    deadline_misses: AtomicU64,
    batches_dispatched: AtomicU64,
    lanes_dispatched: AtomicU64,
    max_batch_lanes: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
    panics_contained: AtomicU64,
    bisection_dispatches: AtomicU64,
    breaker_trips: AtomicU64,
    mutations_applied: AtomicU64,
    compactions: AtomicU64,
    epochs_published: AtomicU64,
    queue_depth: AtomicUsize,
    peak_queue_depth: AtomicUsize,
    wait_hist: [AtomicU64; WAIT_BUCKETS],
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            enqueued: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_bad_deadline: AtomicU64::new(0),
            rejected_circuit_open: AtomicU64::new(0),
            rejected_infeasible: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            lanes_dispatched: AtomicU64::new(0),
            max_batch_lanes: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            bisection_dispatches: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            mutations_applied: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            epochs_published: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            peak_queue_depth: AtomicUsize::new(0),
            wait_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServiceStats {
    pub(crate) fn record_enqueued(&self, depth_now: usize) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(depth_now, Ordering::Relaxed);
        self.peak_queue_depth
            .fetch_max(depth_now, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_bad_deadline(&self) {
        self.rejected_bad_deadline.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_circuit_open(&self) {
        self.rejected_circuit_open.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected_infeasible(&self) {
        self.rejected_infeasible.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deadline_miss(&self, depth_now: usize) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(depth_now, Ordering::Relaxed);
    }

    /// One batch of `lanes` queries left the queue for execution; each lane
    /// waited `wait` ticks.  Dispatch is not completion — lanes resolve
    /// individually through [`record_completed`](Self::record_completed) /
    /// [`record_failed`](Self::record_failed) (a lane may be retried and
    /// dispatch again).
    pub(crate) fn record_batch(
        &self,
        lanes: usize,
        waits: impl Iterator<Item = u64>,
        depth_now: usize,
    ) {
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.lanes_dispatched
            .fetch_add(lanes as u64, Ordering::Relaxed);
        self.max_batch_lanes
            .fetch_max(lanes as u64, Ordering::Relaxed);
        self.queue_depth.store(depth_now, Ordering::Relaxed);
        for w in waits {
            self.wait_hist[bucket_of(w)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `n` lanes resolved with a result.
    pub(crate) fn record_completed(&self, n: usize) {
        self.completed.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// `n` lanes resolved with a terminal [`QueryError::ExecutionFailed`]
    /// (poison lane or retries exhausted).
    ///
    /// [`QueryError::ExecutionFailed`]: crate::QueryError::ExecutionFailed
    pub(crate) fn record_failed(&self, n: usize) {
        self.failed.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// `n` transiently-failed lanes were requeued with backoff.
    pub(crate) fn record_retry(&self, n: usize) {
        self.retries.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// `n` queued lanes were shed by a circuit-breaker trip.
    pub(crate) fn record_shed(&self, n: usize) {
        self.shed.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// One panic was caught and contained by the dispatch path.
    pub(crate) fn record_panic_contained(&self) {
        self.panics_contained.fetch_add(1, Ordering::Relaxed);
    }

    /// One *extra* engine call made by the bisection search (beyond the
    /// single call a healthy batch costs).
    pub(crate) fn record_bisection_dispatch(&self) {
        self.bisection_dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// A circuit breaker tripped open.
    pub(crate) fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` edge deltas were applied to the served graph's delta log.
    pub(crate) fn record_mutations_applied(&self, n: usize) {
        self.mutations_applied
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// One compaction folded the delta log into fresh tiles.
    pub(crate) fn record_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// One new epoch was published (a mutation batch or a compaction).
    pub(crate) fn record_epoch_published(&self) {
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-data copy of the current counter values.
    pub fn snapshot(&self) -> ServiceCounts {
        ServiceCounts {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_bad_deadline: self.rejected_bad_deadline.load(Ordering::Relaxed),
            rejected_circuit_open: self.rejected_circuit_open.load(Ordering::Relaxed),
            rejected_infeasible: self.rejected_infeasible.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            lanes_dispatched: self.lanes_dispatched.load(Ordering::Relaxed),
            max_batch_lanes: self.max_batch_lanes.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            bisection_dispatches: self.bisection_dispatches.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            wait_hist: std::array::from_fn(|i| self.wait_hist[i].load(Ordering::Relaxed)),
        }
    }
}

/// A snapshot of [`ServiceStats`] counter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceCounts {
    /// Queries admitted into the queue.
    pub enqueued: u64,
    /// Queries refused at the door because the bounded queue was full.
    pub rejected_queue_full: u64,
    /// Queries refused at the door because their deadline was not after the
    /// submission tick.
    pub rejected_bad_deadline: u64,
    /// Queries refused at the door because their group's circuit breaker
    /// was open.
    pub rejected_circuit_open: u64,
    /// Queries refused at the door by deadline-feasibility admission.
    pub rejected_infeasible: u64,
    /// Admitted queries whose deadline expired in the queue (completed with
    /// the typed [`QueryError::DeadlineExpired`](crate::QueryError) — never
    /// silently dropped).
    pub deadline_misses: u64,
    /// Batches handed to the batched engine.
    pub batches_dispatched: u64,
    /// Total lanes across all dispatched batches (a retried lane counts
    /// once per dispatch).
    pub lanes_dispatched: u64,
    /// Largest single batch (lanes).
    pub max_batch_lanes: u64,
    /// Queries completed with a result.
    pub completed: u64,
    /// Queries resolved with a terminal
    /// [`QueryError::ExecutionFailed`](crate::QueryError) (poison lane or
    /// retries exhausted).
    pub failed: u64,
    /// Transiently-failed lanes requeued with backoff.
    pub retries: u64,
    /// Queued queries shed by circuit-breaker trips (resolved with the
    /// typed [`QueryError::Shed`](crate::QueryError)).
    pub shed: u64,
    /// Panics caught and contained by the dispatch path.
    pub panics_contained: u64,
    /// Extra engine calls made by the bisection search (≤ 2·⌈log₂ k⌉ per
    /// poison lane in a k-lane batch).
    pub bisection_dispatches: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Edge deltas applied to the served graph's delta log by the writer
    /// path (a retried mutation lane counts once — on the dispatch that
    /// actually applied it).
    pub mutations_applied: u64,
    /// Compactions that folded the delta log into fresh tiles.
    pub compactions: u64,
    /// Epochs published through the service (one per applied mutation
    /// batch, plus one per compaction).
    pub epochs_published: u64,
    /// Queue depth after the most recent event.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub peak_queue_depth: usize,
    /// The queue-wait histogram (power-of-two tick buckets; see
    /// [`WAIT_BUCKETS`]).
    pub wait_hist: [u64; WAIT_BUCKETS],
}

impl ServiceCounts {
    /// Mean lanes per dispatched batch — the occupancy the coalescing
    /// window bought (0 when nothing dispatched).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_dispatched == 0 {
            0.0
        } else {
            self.lanes_dispatched as f64 / self.batches_dispatched as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) of the queue-wait distribution, as
    /// the **upper bound** of the bucket containing it, in ticks (0 when no
    /// waits were recorded).  `quantile(0.5)` = p50, `quantile(0.99)` = p99,
    /// both with one-power-of-two resolution.
    pub fn wait_quantile(&self, q: f64) -> u64 {
        let total: u64 = self.wait_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let threshold = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.wait_hist.iter().enumerate() {
            seen += c;
            if seen >= threshold {
                // Upper bound of bucket i: bucket 0 is the zero wait,
                // bucket i covers [2^(i-1), 2^i).
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (WAIT_BUCKETS - 1)
    }

    /// The ticket-conservation identity: at quiescence (nothing pending)
    /// every admitted query has resolved **exactly once** — completed with
    /// a result, terminally failed, expired, or shed.  The chaos suite
    /// asserts this after every fault-injected run.
    pub fn is_conserved(&self) -> bool {
        self.enqueued == self.completed + self.failed + self.deadline_misses + self.shed
    }

    /// Median queue wait (bucket upper bound, ticks).
    pub fn wait_p50(&self) -> u64 {
        self.wait_quantile(0.5)
    }

    /// 99th-percentile queue wait (bucket upper bound, ticks).
    pub fn wait_p99(&self) -> u64 {
        self.wait_quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), WAIT_BUCKETS - 1);
    }

    #[test]
    fn occupancy_and_quantiles() {
        let stats = ServiceStats::default();
        stats.record_batch(3, [0u64, 5, 1000].into_iter(), 0);
        stats.record_completed(3);
        stats.record_batch(1, [2u64].into_iter(), 0);
        stats.record_completed(1);
        let s = stats.snapshot();
        assert_eq!(s.batches_dispatched, 2);
        assert_eq!(s.lanes_dispatched, 4);
        assert_eq!(s.max_batch_lanes, 3);
        assert_eq!(s.completed, 4);
        assert!((s.mean_batch_occupancy() - 2.0).abs() < 1e-12);
        // Sorted waits: 0, 2, 5, 1000 → p50 in the wait-2 bucket (upper
        // bound 4), p99 in the wait-1000 bucket (upper bound 1024).
        assert_eq!(s.wait_p50(), 4);
        assert_eq!(s.wait_p99(), 1024);
        // Empty histogram → zero quantiles.
        assert_eq!(ServiceStats::default().snapshot().wait_p50(), 0);
    }

    #[test]
    fn queue_depth_gauge_tracks_peak() {
        let stats = ServiceStats::default();
        stats.record_enqueued(1);
        stats.record_enqueued(2);
        stats.record_batch(2, [0u64, 0].into_iter(), 0);
        stats.record_enqueued(1);
        let s = stats.snapshot();
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.peak_queue_depth, 2);
    }

    /// The PR-5-style contention proof: concurrent producers bump the
    /// counters without a lock and no increment is lost or torn.
    #[test]
    fn counters_are_lock_free_under_contention() {
        let stats = ServiceStats::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        stats.record_enqueued(1);
                        stats.record_batch(2, [i % 7, i % 11].into_iter(), 0);
                        stats.record_completed(2);
                        if i % 10 == 0 {
                            stats.record_deadline_miss(0);
                            stats.record_retry(1);
                            stats.record_panic_contained();
                        }
                        if i % 5 == 0 {
                            stats.record_mutations_applied(3);
                            stats.record_epoch_published();
                        }
                        if i % 100 == 0 {
                            stats.record_compaction();
                            stats.record_epoch_published();
                        }
                    }
                });
            }
        });
        let s = stats.snapshot();
        assert_eq!(s.enqueued, 4000);
        assert_eq!(s.batches_dispatched, 4000);
        assert_eq!(s.lanes_dispatched, 8000);
        assert_eq!(s.completed, 8000);
        assert_eq!(s.deadline_misses, 400);
        assert_eq!(s.retries, 400);
        assert_eq!(s.panics_contained, 400);
        assert_eq!(s.mutations_applied, 2400);
        assert_eq!(s.compactions, 40);
        assert_eq!(s.epochs_published, 840);
        assert_eq!(s.wait_hist.iter().sum::<u64>(), 8000);
    }
}
