//! Per-coalescing-group circuit breaker.
//!
//! Repeated execution failures on one coalescing key (e.g. a poisoned PPR
//! configuration that panics every dispatch) must not keep burning engine
//! time and dragging innocent batch-mates down with them.  Each group gets
//! a three-state breaker:
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ──────────────────────────────────▶ Open { until }
//!      ▲                                            │
//!      │ probe succeeds              cooldown elapses (now ≥ until)
//!      │                                            ▼
//!      └──────────────────────────────────────  HalfOpen
//!                     probe fails: back to Open { now + cooldown }
//! ```
//!
//! * **Closed** — normal service; a success resets the consecutive-failure
//!   count, the `threshold`-th consecutive failure trips the breaker.
//! * **Open** — the group sheds its queue (typed
//!   [`QueryError::Shed`](crate::QueryError)) and refuses new submissions
//!   ([`SubmitError::CircuitOpen`](crate::SubmitError)) until the cooldown
//!   tick.
//! * **HalfOpen** — one *probe* batch (capped at a single lane) is allowed
//!   through; its outcome decides between re-closing and re-opening.
//!
//! Like everything else in the scheduler, transitions are functions of the
//! caller-supplied [`Tick`] clock — the breaker never reads wall time, so
//! trip/cooldown/probe sequences replay deterministically in tests.

use crate::query::Tick;

/// The breaker's position in the state machine above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal service (tracks consecutive failures internally).
    Closed,
    /// Shedding: no dispatches, submissions refused until the given tick.
    Open {
        /// The tick at which the breaker half-opens.
        until: Tick,
    },
    /// Cooldown elapsed; exactly one single-lane probe may dispatch.
    HalfOpen,
}

/// What the breaker allows a group to do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Closed: dispatch freely.
    Allow,
    /// Half-open: dispatch one probe batch capped at a single lane.
    Probe,
    /// Open: refuse (submissions and dispatches) until the given tick.
    Refuse {
        /// The tick at which the breaker half-opens.
        until: Tick,
    },
}

/// One group's breaker.  `threshold` consecutive batch failures trip it;
/// it stays open for `cooldown` ticks, then half-opens for a probe.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CircuitBreaker {
    threshold: u32,
    cooldown: u64,
    state: BreakerState,
    consecutive_failures: u32,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32, cooldown: u64) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }

    /// What the group may do at `now`.  An open breaker whose cooldown has
    /// elapsed transitions to half-open here (the lazy edge of the state
    /// machine — no background timer exists).
    pub(crate) fn admission(&mut self, now: Tick) -> Admission {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
            }
        }
        match self.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open { until } => Admission::Refuse { until },
        }
    }

    /// A dispatch on this group completed without a panic.
    pub(crate) fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// A dispatch on this group panicked.  Returns `Some(until)` when this
    /// failure trips (or re-opens) the breaker — the caller sheds the
    /// group's queue.
    pub(crate) fn on_failure(&mut self, now: Tick) -> Option<Tick> {
        match self.state {
            BreakerState::HalfOpen => {
                // The probe failed: straight back to open.
                let until = now.after(self.cooldown);
                self.state = BreakerState::Open { until };
                Some(until)
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    let until = now.after(self.cooldown);
                    self.state = BreakerState::Open { until };
                    Some(until)
                } else {
                    None
                }
            }
            // Already open: nothing dispatches, so nothing new to trip on.
            BreakerState::Open { .. } => None,
        }
    }

    /// The current state (after applying the lazy open → half-open edge at
    /// `now`).
    pub(crate) fn state(&mut self, now: Tick) -> BreakerState {
        self.admission(now);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_on_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 100);
        assert_eq!(b.on_failure(Tick(1)), None);
        assert_eq!(b.on_failure(Tick(2)), None);
        // A success in between resets the count.
        b.on_success();
        assert_eq!(b.on_failure(Tick(3)), None);
        assert_eq!(b.on_failure(Tick(4)), None);
        assert_eq!(b.on_failure(Tick(5)), Some(Tick(105)));
        assert_eq!(b.admission(Tick(6)), Admission::Refuse { until: Tick(105) });
    }

    #[test]
    fn half_opens_after_cooldown_and_probe_decides() {
        let mut b = CircuitBreaker::new(1, 50);
        assert_eq!(b.on_failure(Tick(10)), Some(Tick(60)));
        assert_eq!(b.admission(Tick(59)), Admission::Refuse { until: Tick(60) });
        // Cooldown elapses: one probe allowed.
        assert_eq!(b.admission(Tick(60)), Admission::Probe);
        // Probe fails: re-open for another full cooldown.
        assert_eq!(b.on_failure(Tick(60)), Some(Tick(110)));
        assert_eq!(b.admission(Tick(110)), Admission::Probe);
        // Probe succeeds: closed again.
        b.on_success();
        assert_eq!(b.admission(Tick(111)), Admission::Allow);
        assert_eq!(b.state(Tick(111)), BreakerState::Closed);
    }

    #[test]
    fn threshold_is_at_least_one() {
        let mut b = CircuitBreaker::new(0, 10);
        assert!(b.on_failure(Tick(0)).is_some());
    }
}
