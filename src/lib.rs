//! # bit-graphblas
//!
//! A from-scratch Rust reproduction of **"Bit-GraphBLAS: Bit-Level
//! Optimizations of Matrix-Centric Graph Processing on GPU"** (IPDPS 2022).
//!
//! Bit-GraphBLAS stores a homogeneous graph's adjacency matrix in **B2SR**
//! (Bit-Block Compressed Sparse Row): a CSR index over fixed-size tiles whose
//! non-empty tiles are packed one *bit* per element, and runs the GraphBLAS
//! kernels (SpMV → BMV, SpGEMM → BMM) with word-level AND + population-count
//! operations.  This workspace reimplements the whole system on a software
//! warp model so the bit-level algorithms can be studied, tested and
//! benchmarked without a GPU — see `DESIGN.md` for the substitution table and
//! `EXPERIMENTS.md` for the reproduced tables and figures.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! | Module | Source crate | Contents |
//! |---|---|---|
//! | [`bitops`] | `bitgblas-bitops` | software warp model and bit intrinsics |
//! | [`sparse`] | `bitgblas-sparse` | COO/CSR/CSC/BSR, Matrix Market I/O, float baseline kernels |
//! | [`datagen`] | `bitgblas-datagen` | synthetic corpus generators and pattern classifier |
//! | [`perfmodel`] | `bitgblas-perfmodel` | Pascal/Volta device profiles and the memory-traffic model |
//! | [`core`] | `bitgblas-core` | B2SR, BMV/BMM kernels, semirings, GrB-style API, streaming edge-delta mutations |
//! | [`algorithms`] | `bitgblas-algorithms` | BFS, SSSP, PageRank, PPR, CC, TC on both backends, incremental CC |
//! | [`serve`] | `bitgblas-serve` | query service: lane-coalescing scheduler over the batched engine, coalesced writer path |
//!
//! # Quickstart
//!
//! ```
//! use bit_graphblas::prelude::*;
//!
//! // A small road-network-like graph (2-D grid).
//! let adjacency = bit_graphblas::datagen::generators::grid2d(16, 16);
//!
//! // Store it in B2SR with 8x8 bit tiles and run BFS on the bit backend.
//! let graph = Matrix::from_csr(&adjacency, Backend::Bit(TileSize::S8));
//! let result = bfs(&graph, 0);
//! assert_eq!(result.levels[0], 0);
//! assert!(result.n_reached == 256);
//!
//! // The float-CSR baseline (GraphBLAST stand-in) gives identical answers.
//! let baseline = Matrix::from_csr(&adjacency, Backend::FloatCsr);
//! assert_eq!(bfs(&baseline, 0).levels, result.levels);
//!
//! // B2SR compresses the matrix relative to float CSR.
//! assert!(graph.storage_bytes() < baseline.storage_bytes());
//!
//! // Or let the framework decide the format and tile size per matrix
//! // (pattern classifier + sampling profile + memory-traffic model):
//! let auto = Matrix::from_csr(&adjacency, Backend::Auto);
//! assert_ne!(auto.resolved_backend(), Backend::Auto);
//! assert_eq!(bfs(&auto, 0).levels, result.levels);
//!
//! // Individual GraphBLAS operations use the builder API: a one-hop
//! // Boolean traversal from vertex 0, masked to unvisited vertices.
//! let ctx = Context::default();
//! let frontier = Vector::indicator(256, &[0]);
//! let mut visited = vec![false; 256];
//! visited[0] = true;
//! let next = Op::vxm(&frontier, &graph)
//!     .semiring(Semiring::Boolean)
//!     .mask(&Mask::complemented(visited))
//!     .run(&ctx);
//! assert_eq!(next.nnz(), 2, "vertex 0 of the grid has two neighbours");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use bitgblas_algorithms as algorithms;
pub use bitgblas_bitops as bitops;
pub use bitgblas_core as core;
pub use bitgblas_datagen as datagen;
pub use bitgblas_perfmodel as perfmodel;
pub use bitgblas_serve as serve;
pub use bitgblas_sparse as sparse;

/// The most commonly used items, for `use bit_graphblas::prelude::*`.
pub mod prelude {
    pub use bitgblas_algorithms::{
        betweenness_centrality, bfs, bfs_dir, bfs_multi, connected_components, pagerank, ppr,
        ppr_multi, sssp, sssp_dir, sssp_multi, sssp_with, triangle_count, DynamicCc,
        PageRankConfig, PprConfig,
    };
    pub use bitgblas_core::grb::{
        Context, Descriptor, Direction, Expr, Fusion, GrbBackend, Mask, MultiVec, Op, Snapshot,
    };
    pub use bitgblas_core::{
        B2srMatrix, Backend, BinaryOp, EdgeDelta, Matrix, Semiring, SimdPolicy, TileSize, Vector,
    };
    pub use bitgblas_sparse::{Coo, Csr, DenseVec};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let adj = crate::datagen::generators::cycle(32);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S4));
        assert_eq!(triangle_count(&m), 0);
        let cc = connected_components(&m);
        assert_eq!(cc.n_components, 1);
        let pr = pagerank(&m, &PageRankConfig::default());
        assert!((pr.ranks.iter().sum::<f32>() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn facade_serves_queries() {
        use crate::serve::{GraphService, Query, Tick};
        let adj = crate::datagen::generators::cycle(32);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S4));
        let mut svc = GraphService::builder(&m).coalescing_window(1).build();
        let ticket = svc.submit(Query::bfs(0), Tick(0), None).unwrap();
        svc.pump(Tick(1));
        assert!(svc.take_result(ticket).unwrap().is_ok());
    }
}
