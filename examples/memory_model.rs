//! The §VI-C memory-system analysis: modelled global-load transactions and
//! L1 hit rates of the CSR baseline vs the B2SR bit kernel on the two GPU
//! profiles of Table VI.
//!
//! Run with: `cargo run --release --example memory_model`

use bit_graphblas::datagen::corpus;
use bit_graphblas::perfmodel::traffic::compare_traffic;
use bit_graphblas::perfmodel::{estimate, pascal_gtx1080, volta_titanv, B2srLayout};

fn main() {
    let matrices = [
        "mycielskian8",
        "ash292",
        "jagmesh6",
        "Erdos02",
        "delaunay_n14",
    ];

    for profile in [pascal_gtx1080(), volta_titanv()] {
        println!(
            "\n=== {} ({}) — {} GB/s, {} KiB L1/SM ===",
            profile.name, profile.architecture, profile.mem_bandwidth_gbps, profile.l1_per_sm_kb
        );
        println!(
            "{:<16} {:>10} {:>14} {:>14} {:>10} {:>12} {:>12}",
            "matrix", "nnz", "CSR loads", "B2SR loads", "reduction", "CSR L1 %", "B2SR L1 %"
        );
        for name in matrices {
            let csr = corpus::named_matrix(name).expect("matrix in the corpus");
            let layout = B2srLayout::from_csr(&csr, 8);
            let cmp = compare_traffic(&csr, &layout, &profile);
            println!(
                "{:<16} {:>10} {:>14} {:>14} {:>9.1}x {:>11.1} {:>11.1}",
                name,
                csr.nnz(),
                cmp.csr.load_transactions,
                cmp.b2sr.load_transactions,
                cmp.transaction_reduction,
                cmp.csr.l1_hit_rate * 100.0,
                cmp.b2sr.l1_hit_rate * 100.0
            );
        }

        // Analytic SpMV speedup estimates (one point of Figures 6/7 per matrix).
        println!("\n  modelled BMV speedup over CSR SpMV:");
        for name in matrices {
            let csr = corpus::named_matrix(name).unwrap();
            let layout = B2srLayout::from_csr(&csr, 8);
            let s = estimate::speedup_estimate(&csr, &layout, &profile);
            println!("    {:<16} {:>6.2}x", name, s);
        }
    }

    println!(
        "\nThe paper's §VI-C example (mycielskian8): 4x fewer load transactions and a higher L1\n\
         hit rate for B2SR; the model reproduces the direction and rough magnitude of both."
    );
}
