//! Road-network reachability: BFS and SSSP over a large 2-D grid graph, the
//! "road" pattern category of the paper (minnesota, uk).
//!
//! The example measures wall-clock time of the whole algorithm on the
//! Bit-GraphBLAS backend and on the float-CSR baseline, the same comparison
//! Tables VII/VIII make per matrix.
//!
//! Run with: `cargo run --release --example road_network_bfs`

use std::time::Instant;

use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

fn main() {
    // A 300x300 grid: 90 000 intersections, ~358 800 directed road segments.
    let adjacency = generators::grid2d(300, 300);
    let n = adjacency.nrows();
    println!(
        "road network: {} intersections, {} road segments",
        n,
        adjacency.nnz()
    );

    let source = n / 2 + 150; // roughly the middle of the map

    let mut rows = Vec::new();
    for (label, backend) in [
        ("Bit-GraphBLAS (B2SR-8)", Backend::Bit(TileSize::S8)),
        ("Bit-GraphBLAS (B2SR-32)", Backend::Bit(TileSize::S32)),
        ("float-CSR baseline", Backend::FloatCsr),
        ("auto-selected", Backend::Auto),
    ] {
        let build_start = Instant::now();
        let graph = Matrix::from_csr(&adjacency, backend);
        let build = build_start.elapsed();

        let bfs_start = Instant::now();
        let levels = bfs(&graph, source);
        let bfs_time = bfs_start.elapsed();

        let sssp_start = Instant::now();
        let dist = sssp(&graph, source);
        let sssp_time = sssp_start.elapsed();

        if backend == Backend::Auto {
            println!("auto selection resolved to {:?}", graph.resolved_backend());
        }
        rows.push((label, build, bfs_time, sssp_time, levels, dist));
    }

    println!(
        "\n{:<26} {:>12} {:>12} {:>12}",
        "backend", "convert (ms)", "BFS (ms)", "SSSP (ms)"
    );
    for (label, build, bfs_time, sssp_time, _, _) in &rows {
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>12.2}",
            label,
            build.as_secs_f64() * 1e3,
            bfs_time.as_secs_f64() * 1e3,
            sssp_time.as_secs_f64() * 1e3
        );
    }

    // All backends must agree on the answers.
    let reference_levels = &rows[0].4.levels;
    let reference_dist = &rows[0].5.distances;
    for (label, _, _, _, levels, dist) in &rows[1..] {
        assert_eq!(
            &levels.levels, reference_levels,
            "{label} disagrees on BFS levels"
        );
        assert_eq!(
            &dist.distances, reference_dist,
            "{label} disagrees on SSSP distances"
        );
    }

    let eccentricity = reference_levels.iter().max().unwrap();
    println!("\nall backends agree; farthest intersection is {eccentricity} hops from the source");
}
