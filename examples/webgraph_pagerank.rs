//! PageRank over a synthetic power-law web graph (R-MAT), plus connected
//! components — the arithmetic and tropical semiring workloads of §V.
//!
//! Run with: `cargo run --release --example webgraph_pagerank`

use std::time::Instant;

use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

fn main() {
    // Scale-13 R-MAT: 8192 pages, ~16 links per page, heavy-tailed degrees.
    let adjacency = generators::rmat(13, 16, 0.57, 0.19, 0.19, 2022);
    println!(
        "web graph: {} pages, {} links, max out-degree {}",
        adjacency.nrows(),
        adjacency.nnz(),
        adjacency.out_degrees().iter().max().unwrap()
    );

    let config = PageRankConfig::default(); // alpha 0.85, 10 iterations — the paper's setup
    let mut last_ranks: Option<Vec<f32>> = None;

    for (label, backend) in [
        ("Bit-GraphBLAS (B2SR-8)", Backend::Bit(TileSize::S8)),
        ("float-CSR baseline", Backend::FloatCsr),
        ("auto-selected", Backend::Auto),
    ] {
        let graph = Matrix::from_csr(&adjacency, backend);
        if backend == Backend::Auto {
            println!("auto selection resolved to {:?}", graph.resolved_backend());
        }

        let t0 = Instant::now();
        let pr = pagerank(&graph, &config);
        let pr_time = t0.elapsed();

        let t1 = Instant::now();
        let cc = connected_components(&graph);
        let cc_time = t1.elapsed();

        println!(
            "{label:<26} PageRank {:>8.2} ms ({} iters)   CC {:>8.2} ms ({} components)",
            pr_time.as_secs_f64() * 1e3,
            pr.iterations,
            cc_time.as_secs_f64() * 1e3,
            cc.n_components
        );

        if let Some(prev) = &last_ranks {
            let max_diff = pr
                .ranks
                .iter()
                .zip(prev)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff < 1e-4,
                "backends disagree on PageRank (max diff {max_diff})"
            );
        }
        last_ranks = Some(pr.ranks.clone());

        // Top pages by rank.
        let mut ranked: Vec<(usize, f32)> = pr.ranks.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = ranked
            .iter()
            .take(5)
            .map(|(v, r)| format!("{v} ({r:.4})"))
            .collect();
        println!("    top pages: {}", top.join(", "));
    }

    println!("\nboth backends produce the same ranking (within 1e-4)");

    // The PR-3 lazy expression graph: the same PageRank iterations executed
    // as fused sweeps (the default, GraphBLAS non-blocking mode) vs one
    // kernel per expression node.
    let graph = Matrix::from_csr(&adjacency, Backend::Bit(TileSize::S8));
    let fixed = PageRankConfig {
        tolerance: 0.0,
        ..config
    };
    let t0 = Instant::now();
    let fused = pagerank(&graph, &fixed);
    let fused_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let unfused = pagerank(
        &graph,
        &PageRankConfig {
            fusion: Fusion::NodeAtATime,
            ..fixed
        },
    );
    let unfused_ms = t1.elapsed().as_secs_f64() * 1e3;
    let max_diff = fused
        .ranks
        .iter()
        .zip(&unfused.ranks)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "operator fusion: fused {fused_ms:.2} ms vs node-at-a-time {unfused_ms:.2} ms \
         ({:.2}x, max rank diff {max_diff:.1e})",
        unfused_ms / fused_ms
    );
}
