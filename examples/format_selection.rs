//! Tile-size selection with the sampling profile (Algorithm 1) and the
//! per-matrix compression report of §III-C.
//!
//! Not every matrix benefits from B2SR; the paper provides a cheap sampling
//! profile so users can decide offline whether to convert and which tile size
//! to use.  This example runs the profile on matrices from every structural
//! category and compares the estimate against the exact storage statistics.
//!
//! Run with: `cargo run --release --example format_selection`

use bit_graphblas::core::b2sr::{sample_profile, stats, TileSize};
use bit_graphblas::core::grb::{auto_decision, Context};
use bit_graphblas::datagen::{classify, corpus, generators};

fn main() {
    let matrices: Vec<(&str, bit_graphblas::sparse::Csr)> = vec![
        ("banded mesh", generators::banded(4096, 3, 0.7, 1)),
        (
            "random scatter",
            generators::erdos_renyi(4096, 0.001, true, 2),
        ),
        (
            "block communities",
            generators::block_community(32, 64, 0.3, 1e-5, 3),
        ),
        (
            "stripes",
            generators::stripes(4096, &[1, 512, 1024], 0.8, 4),
        ),
        ("road grid", generators::grid2d(64, 64)),
        (
            "mycielskian12",
            corpus::named_matrix("mycielskian12").unwrap(),
        ),
    ];

    let ctx = Context::default();
    println!(
        "{:<20} {:>10} {:>11} {:>14} {:>14} {:>14} {:>9} {:>16}",
        "matrix",
        "pattern",
        "nnz",
        "sampled best",
        "actual best",
        "actual ratio",
        "convert?",
        "Backend::Auto"
    );

    for (name, csr) in &matrices {
        let category = classify::classify(csr);

        // Algorithm 1: sample 256 rows and estimate the compression per tile size.
        let profile = sample_profile(csr, 256, 0xB17);
        let recommended = profile.recommended_tile_size();

        // Exact statistics for comparison.
        let actual_best = stats::optimal_tile_size(csr);
        let actual_ratio = stats::stats_for(csr, actual_best).compression_ratio;

        // The end-to-end decision Backend::Auto makes from the same inputs
        // (plus the memory-traffic model).
        let decision = auto_decision(csr, &ctx);

        println!(
            "{:<20} {:>10} {:>11} {:>14} {:>14} {:>13.1}% {:>9} {:>16}",
            name,
            category.to_string(),
            csr.nnz(),
            recommended.to_string(),
            actual_best.to_string(),
            actual_ratio * 100.0,
            if profile.worth_converting() {
                "yes"
            } else {
                "no"
            },
            format!("{:?}", decision.chosen)
        );
    }

    // The §III-C mycielskian12 storage walk-through: CSR vs all four variants.
    let myc = corpus::named_matrix("mycielskian12").unwrap();
    println!(
        "\nmycielskian12 storage breakdown (paper §III-C reports the same non-monotone shape):"
    );
    println!("  CSR      {:>10} bytes", myc.storage_bytes());
    for ts in TileSize::ALL {
        let s = stats::stats_for(&myc, ts);
        println!(
            "  {:8} {:>10} bytes  ({:.1}% of CSR)",
            ts.to_string(),
            s.b2sr_bytes,
            s.compression_ratio * 100.0
        );
    }
}
