//! Quickstart: build a graph, convert it to B2SR, and run every algorithm on
//! both the Bit-GraphBLAS backend and the float-CSR baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use bit_graphblas::core::b2sr::stats;
use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

fn main() {
    // A mid-sized synthetic mesh: banded structure, the pattern class the
    // paper reports the largest gains on.
    let adjacency = generators::banded(4096, 3, 0.7, 42);
    println!(
        "graph: {} vertices, {} edges, density {:.2e}",
        adjacency.nrows(),
        adjacency.nnz(),
        adjacency.density()
    );

    // Storage: compare float CSR with the four B2SR variants (Figure 5 view).
    println!(
        "\nstorage (float CSR = {} bytes):",
        adjacency.storage_bytes()
    );
    for s in stats::stats_all_sizes(&adjacency) {
        println!(
            "  {:8}  {:9} bytes   compression ratio {:5.1}%   non-empty tiles {:5.1}%   occupancy {:4.1}%",
            s.tile_size.to_string(),
            s.b2sr_bytes,
            s.compression_ratio * 100.0,
            s.nonempty_tile_ratio * 100.0,
            s.nonzero_occupancy * 100.0
        );
    }

    // Build the two explicit backends, plus the framework's own choice:
    // Backend::Auto classifies the pattern, runs the Algorithm-1 sampling
    // profile and the memory-traffic model, and picks format + tile size.
    let bit = Matrix::from_csr(&adjacency, Backend::Bit(TileSize::S8));
    let baseline = Matrix::from_csr(&adjacency, Backend::FloatCsr);
    let auto = Matrix::from_csr(&adjacency, Backend::Auto);
    println!("\nBackend::Auto selected {:?}", auto.resolved_backend());

    // BFS.
    let bfs_bit = bfs(&bit, 0);
    let bfs_base = bfs(&baseline, 0);
    assert_eq!(bfs_bit.levels, bfs_base.levels);
    println!(
        "\nBFS from vertex 0: reached {} vertices in {} iterations (backends agree)",
        bfs_bit.n_reached, bfs_bit.iterations
    );

    // SSSP.
    let sssp_bit = sssp(&bit, 0);
    let reached = sssp_bit.distances.iter().filter(|d| d.is_finite()).count();
    println!(
        "SSSP from vertex 0: {reached} reachable vertices, {} rounds",
        sssp_bit.iterations
    );

    // PageRank (paper configuration: alpha 0.85, 10 iterations).
    let pr = pagerank(&bit, &PageRankConfig::default());
    let top = pr
        .ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "PageRank: {} iterations, top vertex {} with rank {:.5}",
        pr.iterations, top.0, top.1
    );

    // Connected components.
    let cc = connected_components(&bit);
    println!("Connected components: {}", cc.n_components);

    // Triangle counting.
    let tri_bit = triangle_count(&bit);
    let tri_base = triangle_count(&baseline);
    assert_eq!(tri_bit, tri_base);
    assert_eq!(triangle_count(&auto), tri_bit);
    println!("Triangles: {tri_bit} (backends agree)");

    // Individual GraphBLAS operations compose through the builder API: a
    // one-hop Boolean traversal of the frontier {0}, masked to unvisited
    // vertices, exactly as BFS's inner loop does.
    let ctx = Context::default();
    let frontier = Vector::indicator(adjacency.nrows(), &[0]);
    let mut visited = vec![false; adjacency.nrows()];
    visited[0] = true;
    let next = Op::vxm(&frontier, &bit)
        .semiring(Semiring::Boolean)
        .mask(&Mask::complemented(visited))
        .run(&ctx);
    println!(
        "one builder-API hop from vertex 0 reaches {} vertices",
        next.nnz()
    );

    // The builders are lazy (GraphBLAS non-blocking mode): nothing ran yet
    // when an expression is built, and a whole chain — product, apply,
    // accumulator — fuses into one kernel sweep at run(&ctx).  Here: one
    // min-plus relaxation round with the accumulator folded into the sweep.
    let mut dist = Vector::identity(adjacency.nrows(), Semiring::MinPlus(1.0));
    dist.set(0, 0.0);
    let relaxed = Op::vxm(&dist, &bit)
        .semiring(Semiring::MinPlus(1.0))
        .accum(BinaryOp::Min, &dist)
        .run(&ctx);
    println!(
        "one fused relaxation round reaches {} vertices (fused pipelines run: {})",
        relaxed.as_slice().iter().filter(|d| d.is_finite()).count(),
        ctx.stats().fused_mxv
    );
}
