//! Triangle counting on community-structured social networks — the SpGEMM
//! (BMM) workload of Table IX.
//!
//! Social graphs are block-dense (friend groups), which is exactly the
//! pattern where the bit-packed tiles shine: each 8x8 or 32x32 block of the
//! community is a nearly-full bit tile and the `L·Lᵀ` products become a
//! handful of AND+popcount words.
//!
//! Run with: `cargo run --release --example social_triangles`

use std::time::Instant;

use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

fn main() {
    println!(
        "{:<34} {:>9} {:>11} {:>13} {:>13} {:>13} {:>9}",
        "network", "vertices", "edges", "bit TC (ms)", "float TC (ms)", "auto TC (ms)", "triangles"
    );

    for (name, adjacency) in [
        (
            "small-communities (64 x 48)",
            generators::block_community(64, 48, 0.35, 1e-5, 7),
        ),
        (
            "large-communities (24 x 128)",
            generators::block_community(24, 128, 0.25, 1e-5, 8),
        ),
        (
            "power-law social (rmat-12)",
            generators::rmat(12, 12, 0.57, 0.19, 0.19, 9),
        ),
        ("mycielskian11 (triangle-free)", generators::mycielskian(11)),
    ] {
        let bit_graph = Matrix::from_csr(&adjacency, Backend::Bit(TileSize::S32));
        let float_graph = Matrix::from_csr(&adjacency, Backend::FloatCsr);

        let t0 = Instant::now();
        let tri_bit = triangle_count(&bit_graph);
        let bit_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let tri_float = triangle_count(&float_graph);
        let float_ms = t1.elapsed().as_secs_f64() * 1e3;

        let auto_graph = Matrix::from_csr(&adjacency, Backend::Auto);
        let t2 = Instant::now();
        let tri_auto = triangle_count(&auto_graph);
        let auto_ms = t2.elapsed().as_secs_f64() * 1e3;
        assert_eq!(tri_auto, tri_float, "auto backend disagrees on {name}");

        assert_eq!(tri_bit, tri_float, "backends disagree on {name}");

        println!(
            "{:<34} {:>9} {:>11} {:>13.2} {:>13.2} {:>13.2} {:>9}",
            name,
            adjacency.nrows(),
            adjacency.nnz() / 2,
            bit_ms,
            float_ms,
            auto_ms,
            tri_bit
        );
    }

    println!("\nMycielskian graphs are triangle-free by construction — a useful sanity check.");
}
