//! Landmark distance sketches: answer point-to-point distance queries in
//! O(k) from one batched multi-source traversal.
//!
//! A distance oracle for a service with millions of users cannot afford one
//! BFS per query.  The landmark (a.k.a. ALT / distance-labelling) sketch
//! precomputes the distances from `k` landmark vertices to every vertex —
//! here with **one** `sssp_multi` call whose `n × k` distance matrix is
//! filled by batched min-plus sweeps that read each adjacency tile once for
//! all landmarks — and then estimates any query distance by the triangle
//! inequality:
//!
//! ```text
//! d(u, v)  ≤  min over landmarks L of  d(u, L) + d(L, v)
//! ```
//!
//! (an upper bound; exact whenever some shortest u→v path passes through a
//! landmark).  The example builds the sketch on an RMAT-like power-law
//! graph, compares the batched build against k sequential SSSP runs, and
//! reports the estimate quality on sampled queries.
//!
//! Run with: `cargo run --release --example landmark_sketch`

use std::time::Instant;

use bit_graphblas::algorithms::sssp_multi;
use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

fn main() {
    // A scale-12 symmetrized RMAT graph: a social-network-like topology
    // where a handful of hub landmarks covers most shortest paths.
    let adjacency = generators::rmat(12, 16, 0.57, 0.19, 0.19, 7).symmetrized();
    let n = adjacency.nrows();
    println!("graph: {} vertices, {} edges", n, adjacency.nnz());

    let graph = Matrix::from_csr(&adjacency, Backend::Bit(TileSize::S8));

    // Pick the k highest-degree vertices as landmarks (hubs cover the most
    // shortest paths on a power-law graph).
    let k = 16usize;
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(adjacency.row(v).0.len()));
    let landmarks: Vec<usize> = by_degree[..k].to_vec();
    println!("landmarks (top-{k} by degree): {landmarks:?}");

    // Build the sketch: one batched k-source SSSP.
    let start = Instant::now();
    let sketch = sssp_multi(&graph, &landmarks);
    let batched = start.elapsed();
    println!(
        "sketch built in {batched:.2?} ({} relaxation rounds, one n x {k} distance matrix)",
        sketch.iterations
    );

    // The same distances one query at a time, for comparison.
    let start = Instant::now();
    for &l in &landmarks {
        let single = bit_graphblas::algorithms::sssp(&graph, l);
        std::hint::black_box(single);
    }
    let sequential = start.elapsed();
    println!(
        "sequential {k} x sssp: {sequential:.2?}  (batched speedup {:.2}x)",
        sequential.as_secs_f64() / batched.as_secs_f64()
    );

    // Answer sampled queries from the sketch and compare with the truth.
    let mut exact_hits = 0usize;
    let mut total = 0usize;
    let mut stretch_sum = 0.0f64;
    for q in 0..32usize {
        let u = (q * 131 + 7) % n;
        let v = (q * 977 + 401) % n;
        let truth = bit_graphblas::algorithms::sssp(&graph, u).distances[v];
        if !truth.is_finite() {
            continue;
        }
        // Sketch estimate: min over landmarks of d(u, L) + d(L, v).  The
        // graph is symmetrized, so d(u, L) = d(L, u) — both rows come from
        // the one precomputed matrix.
        let estimate = (0..k)
            .map(|l| sketch.distance(u, l) + sketch.distance(v, l))
            .fold(f32::INFINITY, f32::min);
        total += 1;
        if estimate == truth {
            exact_hits += 1;
        }
        stretch_sum += (estimate / truth.max(1.0)) as f64;
        if q < 5 {
            println!("  d({u}, {v}) = {truth}, sketch estimate {estimate}");
        }
    }
    println!(
        "queries: {total} answered, {exact_hits} exact, mean stretch {:.3}",
        stretch_sum / total.max(1) as f64
    );
}
