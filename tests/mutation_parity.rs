//! Parity and snapshot-isolation proptests for the streaming-mutation
//! subsystem (PR 8).
//!
//! Three invariants, each over random base graphs and random edge-delta
//! streams:
//!
//! * **overlay parity** — traversals through a `base ⊕ delta` overlay
//!   snapshot equal the same traversals on the graph built from scratch
//!   with the deltas already folded in, across Bit8 / FloatCsr / Auto;
//! * **snapshot isolation** — a reader pinned to epoch E observes
//!   bit-identical results no matter how many writer appends and
//!   compactions land after E was taken (including appends racing from
//!   another thread);
//! * **incremental CC** — the union-find overlay of
//!   [`DynamicCc`] tracks FastSV exactly along insert-only streams and
//!   reconciles cleanly on compaction.

use proptest::prelude::*;

use std::collections::BTreeSet;

use bit_graphblas::prelude::*;

/// A random base graph (edge list) plus a random delta stream over the
/// same vertex set.  Deletions draw from the base edges by index so they
/// actually hit present edges about half the time.
fn graph_and_deltas() -> impl Strategy<Value = (Csr, Vec<EdgeDelta>)> {
    (4usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..120);
        let deltas = proptest::collection::vec((any::<bool>(), 0..n, 0..n), 0..40);
        (edges, deltas).prop_map(move |(edges, deltas)| {
            let mut coo = Coo::new(n, n);
            for (r, c) in edges {
                coo.push_edge(r, c).expect("in bounds");
            }
            let deltas = deltas
                .into_iter()
                .map(|(insert, r, c)| {
                    if insert {
                        EdgeDelta::insert(r, c)
                    } else {
                        EdgeDelta::delete(r, c)
                    }
                })
                .collect();
            (coo.to_binary_csr(), deltas)
        })
    })
}

/// The ground truth: fold `deltas` into `base` edge by edge (last op wins)
/// and rebuild a CSR from scratch.
fn folded_csr(base: &Csr, deltas: &[EdgeDelta]) -> Csr {
    let mut edges: BTreeSet<(usize, usize)> = base.iter().map(|(r, c, _)| (r, c)).collect();
    for d in deltas {
        match d.op {
            bit_graphblas::core::delta::DeltaOp::Insert => {
                edges.insert((d.row, d.col));
            }
            bit_graphblas::core::delta::DeltaOp::Delete => {
                edges.remove(&(d.row, d.col));
            }
        }
    }
    let mut coo = Coo::new(base.nrows(), base.ncols());
    for (r, c) in edges {
        coo.push_edge(r, c).expect("in bounds");
    }
    coo.to_binary_csr()
}

const BACKENDS: [Backend; 3] = [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Overlay parity: BFS levels, SSSP distances and CC labels through the
    /// merge-on-read overlay are identical to a from-scratch build of the
    /// mutated graph — on the bit backend, the float baseline, and Auto.
    #[test]
    fn overlay_traversals_match_a_scratch_build((base, deltas) in graph_and_deltas()) {
        let expected_csr = folded_csr(&base, &deltas);
        for backend in BACKENDS {
            let m = Matrix::from_csr(&base, backend);
            m.apply_deltas(&deltas).unwrap();
            let snap = m.snapshot();
            let scratch = Matrix::from_csr(&expected_csr, backend);

            prop_assert_eq!(snap.csr(), scratch.csr(), "{:?}: merged CSR", backend);
            prop_assert_eq!(
                bfs(&snap, 0).levels,
                bfs(&scratch, 0).levels,
                "{:?}: BFS",
                backend
            );
            prop_assert_eq!(
                sssp(&snap, 0).distances,
                sssp(&scratch, 0).distances,
                "{:?}: SSSP",
                backend
            );
            let (a, b) = (connected_components(&snap), connected_components(&scratch));
            prop_assert_eq!(a.labels, b.labels, "{:?}: CC labels", backend);
            prop_assert_eq!(a.n_components, b.n_components, "{:?}: CC count", backend);
        }
    }

    /// Snapshot isolation: a reader pinned to epoch E is bit-stable across
    /// concurrent writer appends from another thread AND across an explicit
    /// compaction, on both backends.
    #[test]
    fn pinned_snapshots_are_bit_stable_under_writes((base, deltas) in graph_and_deltas()) {
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&base, backend);
            // Stage half the stream, pin E, then race the rest in.
            let (first, rest) = deltas.split_at(deltas.len() / 2);
            m.apply_deltas(first).unwrap();
            let snap = m.snapshot();
            let epoch = snap.epoch();
            let levels = bfs(&snap, 0).levels;
            let distances = sssp(&snap, 0).distances;

            std::thread::scope(|scope| {
                let writer = scope.spawn(|| {
                    for d in rest {
                        m.apply_deltas(std::slice::from_ref(d)).unwrap();
                    }
                });
                // Interleave reads with the writer's appends.
                for _ in 0..3 {
                    assert_eq!(bfs(&snap, 0).levels, levels);
                }
                writer.join().expect("writer thread");
            });

            // After every append landed, and again after a compaction, the
            // pinned reader still answers bit-identically.
            m.compact(m.context()).unwrap();
            prop_assert_eq!(snap.epoch(), epoch);
            prop_assert_eq!(bfs(&snap, 0).levels, levels, "{:?}: BFS stable", backend);
            prop_assert_eq!(
                sssp(&snap, 0).distances,
                distances,
                "{:?}: SSSP stable",
                backend
            );
            // And the post-compaction head equals the scratch build.
            let folded = folded_csr(&base, &deltas);
            prop_assert_eq!(m.snapshot().csr(), &folded, "{:?}: folded head", backend);
        }
    }

    /// Dynamic CC: the union-find overlay tracks FastSV exactly along an
    /// insert-only stream (edges mirrored, as CC treats graphs undirected)
    /// and reconciliation on compaction confirms no drift.
    #[test]
    fn dynamic_cc_tracks_insert_streams(
        (base, deltas) in graph_and_deltas(),
        check_every in 1usize..8,
    ) {
        let sym = {
            // Symmetrize the base so FastSV's undirected view and the
            // union-find overlay agree edge for edge.
            let mut coo = Coo::new(base.nrows(), base.ncols());
            for (r, c, _) in base.iter() {
                coo.push_undirected_edge(r, c).expect("in bounds");
            }
            coo.to_binary_csr()
        };
        let m = Matrix::from_csr(&sym, Backend::Bit(TileSize::S8));
        let mut cc = DynamicCc::new(&m);
        for (i, d) in deltas.iter().enumerate() {
            // Insert-only: reuse each delta's endpoints as an undirected
            // insertion regardless of its original op.
            m.apply_deltas(&[
                EdgeDelta::insert(d.row, d.col),
                EdgeDelta::insert(d.col, d.row),
            ])
            .unwrap();
            cc.insert_edge(d.row, d.col);
            if i % check_every == 0 {
                let fresh = connected_components(&m.snapshot());
                prop_assert_eq!(cc.n_components(), fresh.n_components);
                prop_assert_eq!(cc.labels(), fresh.labels);
            }
        }
        m.compact(m.context()).unwrap();
        prop_assert!(cc.reconcile(&m.snapshot()), "insert-only stream must not drift");
    }
}
