//! Property-based tests (proptest) on the core data structures and kernels:
//! random binary matrices and vectors, checked against the float reference
//! kernels and structural invariants.

use proptest::prelude::*;

use bit_graphblas::core::b2sr::convert::from_csr;
use bit_graphblas::core::kernels::{
    bmm_bin_bin_sum, bmv_bin_bin_bin, bmv_bin_bin_full, bmv_bin_full_full, pack_vector_tilewise,
    unpack_vector_bits,
};
use bit_graphblas::core::Semiring;
use bit_graphblas::prelude::*;
use bit_graphblas::sparse::ops;

/// Strategy: a random binary square matrix as an edge list.
fn matrix_strategy(max_n: usize, max_edges: usize) -> impl Strategy<Value = Csr> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |edges| {
            let mut coo = Coo::new(n, n);
            for (r, c) in edges {
                coo.push_edge(r, c).expect("in bounds");
            }
            coo.to_binary_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR -> B2SR -> CSR is the identity for every tile size.
    #[test]
    fn b2sr_roundtrip_is_identity(csr in matrix_strategy(120, 600)) {
        prop_assert_eq!(&from_csr::<u8>(&csr, 4).to_csr(), &csr);
        prop_assert_eq!(&from_csr::<u8>(&csr, 8).to_csr(), &csr);
        prop_assert_eq!(&from_csr::<u16>(&csr, 16).to_csr(), &csr);
        prop_assert_eq!(&from_csr::<u32>(&csr, 32).to_csr(), &csr);
    }

    /// Transposing twice is the identity, and the transpose matches CSR's.
    #[test]
    fn b2sr_transpose_involution(csr in matrix_strategy(100, 500)) {
        let b = from_csr::<u16>(&csr, 16);
        let t = b.transpose();
        prop_assert_eq!(t.to_csr(), csr.transpose());
        prop_assert_eq!(t.transpose().to_csr(), csr);
    }

    /// The number of set bits always equals the CSR nnz, and the storage
    /// accounting never reports fewer bytes than the raw tile payload.
    #[test]
    fn b2sr_structural_invariants(csr in matrix_strategy(150, 900)) {
        for ts in TileSize::ALL {
            let b = B2srMatrix::from_csr(&csr, ts);
            prop_assert_eq!(b.nnz() as usize, csr.nnz());
            let tile_payload = b.n_tiles() * ts.bytes_per_tile();
            prop_assert!(b.storage_bytes() >= tile_payload);
            // Tile count can never exceed nnz (every non-empty tile holds >= 1 bit).
            prop_assert!(b.n_tiles() <= csr.nnz().max(1));
        }
    }

    /// bmv_bin_full_full over the arithmetic semiring equals the float SpMV.
    #[test]
    fn bmv_arithmetic_matches_float_spmv(
        csr in matrix_strategy(90, 500),
        seed in 0u64..1000,
    ) {
        let n = csr.ncols();
        let x: Vec<f32> = (0..n).map(|i| ((i as u64 * 31 + seed) % 7) as f32).collect();
        let expected = ops::spmv(&csr, &DenseVec::from_vec(x.clone())).unwrap();
        let b = from_csr::<u8>(&csr, 8);
        let got = bmv_bin_full_full(&b, &x, Semiring::Arithmetic);
        for (g, e) in got.iter().zip(expected.as_slice()) {
            prop_assert!((g - e).abs() < 1e-3, "{} vs {}", g, e);
        }
    }

    /// The Boolean BMV computes exactly the reachability relation.
    #[test]
    fn bmv_boolean_is_reachability(csr in matrix_strategy(80, 400), active in proptest::collection::vec(any::<bool>(), 80)) {
        let n = csr.ncols();
        let x: Vec<f32> = (0..n).map(|i| if *active.get(i).unwrap_or(&false) { 1.0 } else { 0.0 }).collect();
        let b = from_csr::<u32>(&csr, 32);
        let xp = pack_vector_tilewise::<u32>(&x, 32);
        let got = unpack_vector_bits(&bmv_bin_bin_bin(&b, &xp), 32, csr.nrows());
        for (r, &bit) in got.iter().enumerate() {
            let expect = csr.row(r).0.iter().any(|&c| x[c] != 0.0);
            prop_assert_eq!(bit, expect, "row {}", r);
        }
        // And the counting variant agrees with an explicit count.
        let counts = bmv_bin_bin_full(&b, &xp);
        for (r, &cnt) in counts.iter().enumerate() {
            let expect = csr.row(r).0.iter().filter(|&&c| x[c] != 0.0).count() as f32;
            prop_assert_eq!(cnt, expect);
        }
    }

    /// The min-plus BMV equals the float min-plus SpMV on binary weights.
    #[test]
    fn bmv_minplus_matches_float(csr in matrix_strategy(70, 400), src in 0usize..70) {
        let n = csr.ncols();
        let src = src % n;
        let mut x = vec![f32::INFINITY; n];
        x[src] = 0.0;
        let expected = ops::spmv_semiring(&csr, &DenseVec::from_vec(x.clone()), ops::SemiringKind::MinPlus).unwrap();
        let b = from_csr::<u16>(&csr, 16);
        let got = bmv_bin_full_full(&b, &x, Semiring::MinPlus(1.0));
        prop_assert_eq!(got, expected.as_slice().to_vec());
    }

    /// The BMM total sum equals the float SpGEMM total sum.
    #[test]
    fn bmm_sum_matches_float_spgemm(a in matrix_strategy(60, 300), b in matrix_strategy(60, 300)) {
        // Make the dimensions agree by trimming to the smaller n.
        let n = a.nrows().min(b.nrows());
        let a = Csr::from_dense(&sub_dense(&a, n), n, n);
        let b = Csr::from_dense(&sub_dense(&b, n), n, n);
        let expected = ops::reduce_sum(&ops::spgemm(&a, &b).unwrap()) as u64;
        let got = bmm_bin_bin_sum(&from_csr::<u8>(&a, 8), &from_csr::<u8>(&b, 8));
        prop_assert_eq!(got, expected);
    }

    /// BFS levels from the GrB pipeline match the queue-based reference for
    /// every backend.
    #[test]
    fn bfs_matches_reference(csr in matrix_strategy(80, 400), src in 0usize..80) {
        let src = src % csr.nrows();
        let expected = bit_graphblas::algorithms::reference::bfs_levels(&csr, src);
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&csr, backend);
            let got = bfs(&m, src);
            prop_assert_eq!(&got.levels, &expected);
        }
    }

    /// Triangle counting is backend-independent and matches the reference on
    /// symmetrized graphs.
    #[test]
    fn tc_matches_reference(csr in matrix_strategy(60, 350)) {
        let adj = csr.symmetrized().without_diagonal();
        let expected = bit_graphblas::algorithms::reference::triangle_count(&adj);
        for backend in [Backend::Bit(TileSize::S4), Backend::Bit(TileSize::S32), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            prop_assert_eq!(triangle_count(&m), expected);
        }
    }
}

/// Dense top-left `n × n` sub-matrix of a CSR (helper for the BMM property).
fn sub_dense(csr: &Csr, n: usize) -> Vec<f32> {
    let mut d = vec![0.0f32; n * n];
    for (r, c, v) in csr.iter() {
        if r < n && c < n {
            d[r * n + c] = v;
        }
    }
    d
}
