//! Differential SIMD parity harness (PR 9): the scalar and SWAR-vector
//! kernel paths must be **bit-identical** — not approximately equal — on
//! every semiring, tile size, direction, mask shape and thread budget.
//!
//! Each property pins one side of the differential with
//! [`SimdPolicy::ForceScalar`] and the other with
//! [`SimdPolicy::ForceVector`], runs the same whole algorithm on both, and
//! compares outputs exactly (`f32::to_bits` for float results).  Because
//! the vector kernels preserve the scalar kernels' per-row reduction order
//! (they parallelize across lanes, never across one row's fold), equality
//! is exact even for the non-associative float `+` of the arithmetic
//! semiring.
//!
//! Also covered here: the `BITGBLAS_SIMD` env knob, the per-operation
//! descriptor override (and its restore-on-drop), and the `Context`
//! calibration surface the runtime selection feeds on.

mod common;

use proptest::prelude::*;

use bit_graphblas::algorithms::{bfs_multi_dir, sssp_multi_dir};
use bit_graphblas::core::grb::SIMD_ENV_VAR;
use bit_graphblas::core::{CalibratedProfile, CalibrationSamples, CalibrationSource};
use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

use common::{graph_strategy, simd_backends};

/// Run `run` on `m` with the matrix context pinned to `policy`.
fn forced<T>(m: &Matrix, policy: SimdPolicy, run: impl FnOnce(&Matrix) -> T) -> T {
    m.context().set_simd_policy(policy);
    run(m)
}

/// Exact bit pattern of a float slice — the comparison currency of the
/// whole harness.
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// BFS levels and SSSP distances are bit-identical between the forced
    /// scalar and forced vector paths on every SIMD-capable backend, in
    /// pull and in the per-iteration auto switch (whose push iterations
    /// are scalar on both sides — the differential isolates the pull
    /// sweeps the vector engine replaces).
    #[test]
    fn bfs_and_sssp_vector_equals_scalar(adj in graph_strategy(), src in 0usize..1_000) {
        let src = src % adj.nrows();
        for backend in simd_backends() {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Pull, Direction::Auto] {
                let scalar = forced(&m, SimdPolicy::ForceScalar, |m| bfs_dir(m, src, dir));
                let vector = forced(&m, SimdPolicy::ForceVector, |m| bfs_dir(m, src, dir));
                prop_assert_eq!(&vector.levels, &scalar.levels, "bfs {:?} {:?}", backend, dir);

                let scalar = forced(&m, SimdPolicy::ForceScalar, |m| sssp_dir(m, src, dir));
                let vector = forced(&m, SimdPolicy::ForceVector, |m| sssp_dir(m, src, dir));
                prop_assert_eq!(
                    bits(&vector.distances),
                    bits(&scalar.distances),
                    "sssp {:?} {:?}",
                    backend,
                    dir
                );
            }
        }
    }

    /// PageRank and personalized PageRank — dense arithmetic-semiring
    /// iterations, the float case where reduction order matters most —
    /// produce bit-identical ranks under both policies.
    #[test]
    fn pagerank_and_ppr_vector_equals_scalar(adj in graph_strategy(), seed in 0usize..1_000) {
        let n = adj.nrows();
        let pr_cfg = PageRankConfig { max_iterations: 12, ..Default::default() };
        let ppr_cfg = PprConfig::default();
        for backend in simd_backends() {
            let m = Matrix::from_csr(&adj, backend);
            let scalar = forced(&m, SimdPolicy::ForceScalar, |m| pagerank(m, &pr_cfg));
            let vector = forced(&m, SimdPolicy::ForceVector, |m| pagerank(m, &pr_cfg));
            prop_assert_eq!(vector.iterations, scalar.iterations, "{:?}", backend);
            prop_assert_eq!(bits(&vector.ranks), bits(&scalar.ranks), "pagerank {:?}", backend);

            let s = seed % n;
            let scalar = forced(&m, SimdPolicy::ForceScalar, |m| ppr(m, s, &ppr_cfg));
            let vector = forced(&m, SimdPolicy::ForceVector, |m| ppr(m, s, &ppr_cfg));
            prop_assert_eq!(bits(&vector.scores), bits(&scalar.scores), "ppr {:?}", backend);
        }
    }

    /// The differential holds at every thread budget — 1, 2, 4 and 8 — and
    /// the vector path is additionally bit-identical *across* budgets
    /// (lane parallelism must not perturb the fold grouping).
    #[test]
    fn vector_equals_scalar_across_thread_budgets(adj in graph_strategy(), src in 0usize..1_000) {
        let src = src % adj.nrows();
        for backend in simd_backends() {
            let ctx = Context::with_threads(8);
            let m = Matrix::from_csr_ctx(&adj, backend, &ctx);
            let mut ref_levels: Option<Vec<i64>> = None;
            let mut ref_dist: Option<Vec<u32>> = None;
            for threads in [1usize, 2, 4, 8] {
                m.context().set_threads(threads);
                let s_bfs = forced(&m, SimdPolicy::ForceScalar, |m| {
                    bfs_dir(m, src, Direction::Pull).levels
                });
                let v_bfs = forced(&m, SimdPolicy::ForceVector, |m| {
                    bfs_dir(m, src, Direction::Pull).levels
                });
                prop_assert_eq!(&v_bfs, &s_bfs, "bfs {:?} threads={}", backend, threads);

                let s_dist = forced(&m, SimdPolicy::ForceScalar, |m| {
                    bits(&sssp_dir(m, src, Direction::Pull).distances)
                });
                let v_dist = forced(&m, SimdPolicy::ForceVector, |m| {
                    bits(&sssp_dir(m, src, Direction::Pull).distances)
                });
                prop_assert_eq!(&v_dist, &s_dist, "sssp {:?} threads={}", backend, threads);

                match (&ref_levels, &ref_dist) {
                    (None, _) => {
                        ref_levels = Some(v_bfs);
                        ref_dist = Some(v_dist);
                    }
                    (Some(rl), Some(rd)) => {
                        prop_assert_eq!(&v_bfs, rl, "{:?} diverged at {} threads", backend, threads);
                        prop_assert_eq!(&v_dist, rd, "{:?} diverged at {} threads", backend, threads);
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Batched multi-source traversal, including the `k > 64` lane spill where
/// frontiers occupy more than one `u64` word per node: every lane of the
/// vector path equals the scalar path bit-for-bit.
#[test]
fn multi_source_lane_spill_vector_equals_scalar() {
    let adj = generators::erdos_renyi(160, 0.03, true, 11);
    let n = adj.nrows();
    for k in [1usize, 63, 64, 70] {
        let sources: Vec<usize> = (0..k).map(|i| (i * 7 + 3) % n).collect();
        for backend in simd_backends() {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Pull, Direction::Auto] {
                let s = forced(&m, SimdPolicy::ForceScalar, |m| {
                    bfs_multi_dir(m, &sources, dir)
                });
                let v = forced(&m, SimdPolicy::ForceVector, |m| {
                    bfs_multi_dir(m, &sources, dir)
                });
                assert_eq!(v.levels, s.levels, "bfs_multi {backend:?} {dir:?} k={k}");

                let s = forced(&m, SimdPolicy::ForceScalar, |m| {
                    sssp_multi_dir(m, &sources, dir)
                });
                let v = forced(&m, SimdPolicy::ForceVector, |m| {
                    sssp_multi_dir(m, &sources, dir)
                });
                for l in 0..k {
                    for vtx in 0..n {
                        assert_eq!(
                            v.distance(vtx, l).to_bits(),
                            s.distance(vtx, l).to_bits(),
                            "sssp_multi {backend:?} {dir:?} k={k} lane {l} vertex {vtx}"
                        );
                    }
                }
            }
        }
    }
}

/// Empty frontiers: an all-identity operand stays the identity through the
/// vector pull sweep on every semiring, exactly as on the scalar path, and
/// BFS from an out-degree-0 vertex terminates identically.
#[test]
fn empty_frontier_is_identity_on_the_vector_path() {
    let adj = generators::erdos_renyi(96, 0.04, true, 42);
    let zero = Vector::zeros(96);
    let inf = Vector::identity(96, Semiring::MinPlus(1.0));
    for backend in simd_backends() {
        let ctx = Context::default();
        let m = Matrix::from_csr_ctx(&adj, backend, &ctx);
        for policy in [SimdPolicy::ForceScalar, SimdPolicy::ForceVector] {
            ctx.set_simd_policy(policy);
            let bool_out = Op::vxm(&zero, &m)
                .semiring(Semiring::Boolean)
                .direction(Direction::Pull)
                .run(&ctx);
            assert_eq!(bool_out.nnz(), 0, "{backend:?} {policy:?}");
            let minplus_out = Op::vxm(&inf, &m)
                .semiring(Semiring::MinPlus(1.0))
                .direction(Direction::Pull)
                .run(&ctx);
            assert!(
                minplus_out.as_slice().iter().all(|v| v.is_infinite()),
                "{backend:?} {policy:?}"
            );
        }
    }

    let mut coo = Coo::new(8, 8);
    coo.push_edge(1, 2).unwrap();
    let m = Matrix::from_csr(&coo.to_binary_csr(), Backend::Bit(TileSize::S4));
    let s = forced(&m, SimdPolicy::ForceScalar, |m| {
        bfs_dir(m, 0, Direction::Pull)
    });
    let v = forced(&m, SimdPolicy::ForceVector, |m| {
        bfs_dir(m, 0, Direction::Pull)
    });
    assert_eq!((v.n_reached, v.iterations), (s.n_reached, s.iterations));
    assert_eq!(v.levels, s.levels);
}

/// Shapes that straddle tile boundaries (n = 17, 33, 65: one row/column
/// past a tile edge for every tile size) — the partial-tile tails the
/// vector masks must handle exactly like the scalar bounds checks.
#[test]
fn tile_straddling_shapes_vector_equals_scalar() {
    for n in [17usize, 33, 65] {
        for adj in [
            generators::erdos_renyi(n, 0.15, true, n as u64),
            generators::cycle(n),
        ] {
            for backend in simd_backends() {
                let m = Matrix::from_csr(&adj, backend);
                let s = forced(&m, SimdPolicy::ForceScalar, |m| {
                    bfs_dir(m, 0, Direction::Pull)
                });
                let v = forced(&m, SimdPolicy::ForceVector, |m| {
                    bfs_dir(m, 0, Direction::Pull)
                });
                assert_eq!(v.levels, s.levels, "bfs n={n} {backend:?}");

                let s = forced(&m, SimdPolicy::ForceScalar, |m| {
                    sssp_dir(m, 0, Direction::Pull)
                });
                let v = forced(&m, SimdPolicy::ForceVector, |m| {
                    sssp_dir(m, 0, Direction::Pull)
                });
                assert_eq!(
                    bits(&v.distances),
                    bits(&s.distances),
                    "sssp n={n} {backend:?}"
                );

                let cfg = PageRankConfig {
                    max_iterations: 8,
                    ..Default::default()
                };
                let s = forced(&m, SimdPolicy::ForceScalar, |m| pagerank(m, &cfg));
                let v = forced(&m, SimdPolicy::ForceVector, |m| pagerank(m, &cfg));
                assert_eq!(bits(&v.ranks), bits(&s.ranks), "pagerank n={n} {backend:?}");
            }
        }
    }
}

/// The `BITGBLAS_SIMD` environment variable seeds the policy of freshly
/// constructed contexts; unparseable values fall back to `Auto`.
///
/// (Every other test in this binary pins its policy explicitly before each
/// measured run, so the transient seed cannot perturb them.)
#[test]
fn env_var_seeds_fresh_contexts() {
    for (value, expect) in [
        ("scalar", SimdPolicy::ForceScalar),
        ("off", SimdPolicy::ForceScalar),
        ("vector", SimdPolicy::ForceVector),
        ("on", SimdPolicy::ForceVector),
        ("auto", SimdPolicy::Auto),
        ("warp-speed", SimdPolicy::Auto),
    ] {
        std::env::set_var(SIMD_ENV_VAR, value);
        assert_eq!(Context::default().simd_policy(), expect, "{value:?}");
    }
    std::env::remove_var(SIMD_ENV_VAR);
    assert_eq!(Context::default().simd_policy(), SimdPolicy::Auto);
}

/// A per-operation descriptor override wins for that operation only: the
/// result matches the context-pinned run bit-for-bit, and the context's
/// policy is restored afterwards (the drop guard).
#[test]
fn descriptor_override_wins_for_one_op_and_restores_the_policy() {
    let adj = generators::erdos_renyi(120, 0.05, true, 9);
    let ctx = Context::default();
    let m = Matrix::from_csr_ctx(&adj, Backend::Bit(TileSize::S8), &ctx);
    let x = Vector::from_vec((0..120).map(|i| (i % 5) as f32 * 0.25).collect());

    ctx.set_simd_policy(SimdPolicy::ForceScalar);
    let scalar = Op::vxm(&x, &m)
        .semiring(Semiring::Arithmetic)
        .direction(Direction::Pull)
        .run(&ctx);
    let overridden = Op::vxm(&x, &m)
        .semiring(Semiring::Arithmetic)
        .direction(Direction::Pull)
        .simd(SimdPolicy::ForceVector)
        .run(&ctx);
    assert_eq!(
        bits(overridden.as_slice()),
        bits(scalar.as_slice()),
        "override must be invisible in the output"
    );
    assert_eq!(
        ctx.simd_policy(),
        SimdPolicy::ForceScalar,
        "the override must restore the context policy on drop"
    );

    // The same knob through a prebuilt descriptor.
    let desc = Descriptor {
        direction: Direction::Pull,
        simd: Some(SimdPolicy::ForceVector),
        ..Default::default()
    };
    let via_desc = Op::vxm(&x, &m)
        .semiring(Semiring::Arithmetic)
        .desc(desc)
        .run(&ctx);
    assert_eq!(bits(via_desc.as_slice()), bits(scalar.as_slice()));
    assert_eq!(ctx.simd_policy(), SimdPolicy::ForceScalar);
}

/// Pinned samples the decision logic distills deterministically — the same
/// fixture as the crate's unit tests, exercised through the public
/// `Context` surface.
fn pinned_samples() -> CalibrationSamples {
    CalibrationSamples {
        seq_ns_per_word: 1.0,
        rand_ns_per_word: 12.5,
        l2_curve: vec![
            (1 << 14, 1.0),
            (1 << 16, 1.05),
            (1 << 18, 1.2),
            (1 << 20, 1.4),
            (1 << 22, 9.0),
        ],
        simd_speedup: [2.0, 3.0, 1.5, 0.7],
    }
}

/// Calibration from a pinned measurement stub is deterministic, persists in
/// the context, survives a `Context` clone, and feeds the shard sizing.
#[test]
fn calibration_is_deterministic_and_round_trips_through_clone() {
    let ctx = Context::default();
    let a = ctx.calibrate_from(&pinned_samples());
    let b = Context::default().calibrate_from(&pinned_samples());
    assert_eq!(a, b, "same samples must distill to the same profile");
    assert_eq!(a.source, CalibrationSource::Measured);
    assert_eq!(a.scatter_alpha, 12.5);
    assert_eq!(a.l2_bytes, 1 << 20);
    assert_eq!(a.simd_lane_mask, 0b0111);
    assert_eq!(ctx.profile(), a, "calibrate_from must persist its result");

    let cloned = ctx.clone();
    assert_eq!(cloned.profile(), a, "profiles must survive a context clone");
    assert_eq!(
        cloned.shard_config().cache_bytes,
        a.l2_bytes,
        "shard sizing must follow the calibrated L2"
    );

    // The persistence format round-trips the profile exactly.
    let text = a.to_string();
    let back: CalibratedProfile = text.parse().unwrap();
    assert_eq!(back, a, "{text}");
}

/// Degenerate timings (a zero-resolution clock) degrade to the static
/// device-derived profile — calibration can refine the model, never break it.
#[test]
fn degenerate_calibration_degrades_to_the_static_profile() {
    let ctx = Context::default();
    let static_profile = ctx.profile();
    assert_eq!(static_profile.source, CalibrationSource::Static);
    let p = ctx.calibrate_from(&CalibrationSamples::degenerate());
    assert_eq!(p, static_profile);
    assert_eq!(ctx.profile(), static_profile);
}

/// A live `Context::calibrate` on this host stays inside the model's sane
/// ranges, and the calibrated lane mask cannot perturb results: auto
/// dispatch under the measured profile equals the forced-scalar run.
#[test]
fn live_calibration_stays_in_range_and_preserves_parity() {
    let adj = generators::erdos_renyi(140, 0.04, true, 5);
    let ctx = Context::default();
    let m = Matrix::from_csr_ctx(&adj, Backend::Bit(TileSize::S8), &ctx);

    ctx.set_simd_policy(SimdPolicy::ForceScalar);
    let reference = bfs_dir(&m, 0, Direction::Pull).levels;

    let p = ctx.calibrate();
    assert!((4.0..=32.0).contains(&p.scatter_alpha), "{p}");
    assert!(p.l2_bytes > 0, "{p}");
    assert_eq!(ctx.profile(), p);

    ctx.set_simd_policy(SimdPolicy::Auto);
    let auto = bfs_dir(&m, 0, Direction::Pull).levels;
    assert_eq!(auto, reference, "calibrated auto dispatch must stay exact");
}
