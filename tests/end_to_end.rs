//! Cross-crate integration tests: build graphs with the generators, convert
//! them through every B2SR variant, run every algorithm on every backend and
//! check the answers against the reference implementations.

use bit_graphblas::algorithms::{self, reference, PageRankConfig};
use bit_graphblas::core::b2sr::{sample_profile, stats};
use bit_graphblas::datagen::{classify, corpus, generators, PatternCategory};
use bit_graphblas::prelude::*;

fn all_backends() -> Vec<Backend> {
    vec![
        Backend::Bit(TileSize::S4),
        Backend::Bit(TileSize::S8),
        Backend::Bit(TileSize::S16),
        Backend::Bit(TileSize::S32),
        Backend::FloatCsr,
        Backend::Auto,
    ]
}

/// A representative set of small-to-mid graphs from every pattern category.
fn test_graphs() -> Vec<(String, Csr)> {
    vec![
        ("banded".to_string(), generators::banded(300, 3, 0.7, 1)),
        (
            "erdos_renyi".to_string(),
            generators::erdos_renyi(250, 0.02, true, 2),
        ),
        (
            "rmat".to_string(),
            generators::rmat(8, 8, 0.57, 0.19, 0.19, 3),
        ),
        ("grid".to_string(), generators::grid2d(18, 17)),
        (
            "blocks".to_string(),
            generators::block_community(5, 40, 0.3, 1e-4, 4),
        ),
        (
            "stripes".to_string(),
            generators::stripes(260, &[1, 37, 90], 0.8, 5),
        ),
        ("mycielskian7".to_string(), generators::mycielskian(7)),
    ]
}

#[test]
fn bfs_agrees_with_reference_on_all_backends_and_graphs() {
    for (name, adj) in test_graphs() {
        let expected = reference::bfs_levels(&adj, 0);
        for backend in all_backends() {
            let m = Matrix::from_csr(&adj, backend);
            let got = bfs(&m, 0);
            assert_eq!(got.levels, expected, "{name} / {backend:?}");
        }
    }
}

#[test]
fn sssp_agrees_with_reference_on_all_backends_and_graphs() {
    for (name, adj) in test_graphs() {
        let expected = reference::sssp_distances(&adj, 1);
        for backend in all_backends() {
            let m = Matrix::from_csr(&adj, backend);
            let got = sssp(&m, 1);
            for (v, (g, e)) in got.distances.iter().zip(&expected).enumerate() {
                let both_inf = g.is_infinite() && e.is_infinite();
                assert!(
                    both_inf || (g - e).abs() < 1e-4,
                    "{name} / {backend:?}: vertex {v}: {g} vs {e}"
                );
            }
        }
    }
}

#[test]
fn connected_components_agree_with_union_find() {
    for (name, adj) in test_graphs() {
        let expected = reference::cc_labels(&adj);
        for backend in [
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
        ] {
            let m = Matrix::from_csr(&adj, backend);
            let got = connected_components(&m);
            assert_eq!(got.labels, expected, "{name} / {backend:?}");
        }
    }
}

#[test]
fn triangle_counts_agree_with_reference() {
    for (name, adj) in test_graphs() {
        let expected = reference::triangle_count(&adj);
        for backend in all_backends() {
            let m = Matrix::from_csr(&adj, backend);
            assert_eq!(triangle_count(&m), expected, "{name} / {backend:?}");
        }
    }
}

#[test]
fn pagerank_is_backend_independent_and_normalised() {
    for (name, adj) in test_graphs() {
        let config = PageRankConfig {
            max_iterations: 15,
            ..Default::default()
        };
        let baseline = pagerank(&Matrix::from_csr(&adj, Backend::FloatCsr), &config);
        let total: f32 = baseline.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-2, "{name}: ranks sum to {total}");
        for backend in [Backend::Bit(TileSize::S4), Backend::Bit(TileSize::S16)] {
            let got = pagerank(&Matrix::from_csr(&adj, backend), &config);
            for (v, (g, b)) in got.ranks.iter().zip(&baseline.ranks).enumerate() {
                assert!((g - b).abs() < 1e-4, "{name} / {backend:?}: vertex {v}");
            }
        }
    }
}

#[test]
fn b2sr_roundtrip_preserves_every_corpus_matrix() {
    for name in corpus::named_matrix_list().into_iter().take(12) {
        let csr = corpus::named_matrix(name).unwrap();
        for ts in TileSize::ALL {
            let b2sr = B2srMatrix::from_csr(&csr, ts);
            assert_eq!(b2sr.to_csr(), csr, "{name} via {ts}");
            assert_eq!(b2sr.nnz() as usize, csr.nnz(), "{name} via {ts}");
        }
    }
}

#[test]
fn compression_statistics_are_consistent_with_conversion() {
    let adj = generators::banded(1024, 4, 0.8, 9);
    for ts in TileSize::ALL {
        let s = stats::stats_for(&adj, ts);
        let b = B2srMatrix::from_csr(&adj, ts);
        assert_eq!(s.n_tiles, b.n_tiles());
        assert_eq!(s.b2sr_bytes, b.storage_bytes());
    }
    // The paper's headline: banded matrices compress well under B2SR.
    assert!(stats::stats_for(&adj, stats::optimal_tile_size(&adj)).compression_ratio < 0.7);
}

#[test]
fn sampling_profile_recommendation_actually_compresses() {
    for (name, adj) in [
        ("banded", generators::banded(2048, 3, 0.7, 11)),
        ("blocks", generators::block_community(16, 64, 0.3, 1e-5, 12)),
    ] {
        let profile = sample_profile(&adj, 256, 13);
        assert!(
            profile.worth_converting(),
            "{name} should be worth converting"
        );
        let rec = profile.recommended_tile_size();
        let actual = stats::stats_for(&adj, rec);
        assert!(
            actual.compression_ratio < 1.0,
            "{name}: recommended {rec} does not compress"
        );
    }
}

#[test]
fn classifier_assigns_expected_categories_to_generators() {
    assert_eq!(
        classify(&generators::banded(512, 3, 0.8, 1)),
        PatternCategory::Diagonal
    );
    assert_eq!(
        classify(&generators::stripes(1024, &[97, 211], 0.9, 2)),
        PatternCategory::Stripe
    );
    assert_eq!(
        classify(&generators::erdos_renyi(512, 0.01, true, 3)),
        PatternCategory::Dot
    );
}

#[test]
fn grb_ops_compose_into_custom_algorithms() {
    // A user-level composition: two-hop reachability via two builder calls.
    let ctx = Context::default();
    let adj = generators::erdos_renyi(200, 0.03, true, 21);
    let bit = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
    let float = Matrix::from_csr(&adj, Backend::FloatCsr);
    let start = Vector::indicator(200, &[0]);

    let two_hop = |a: &Matrix| {
        let hop1 = Op::vxm(&start, a).semiring(Semiring::Boolean).run(&ctx);
        Op::vxm(&hop1, a).semiring(Semiring::Boolean).run(&ctx)
    };
    let hop2_bit = two_hop(&bit);
    let hop2_float = two_hop(&float);

    for (b, f) in hop2_bit.as_slice().iter().zip(hop2_float.as_slice()) {
        assert_eq!(*b != 0.0, *f != 0.0);
    }
    assert!(Op::reduce(&hop2_bit).run(&ctx) > 0.0);

    // The transpose-descriptor formulation of the same traversal agrees.
    let hop1 = Op::mxv(&bit, &start)
        .semiring(Semiring::Boolean)
        .desc(Descriptor::with_transpose())
        .run(&ctx);
    let hop2 = Op::mxv(&bit, &hop1)
        .semiring(Semiring::Boolean)
        .desc(Descriptor::with_transpose())
        .run(&ctx);
    assert_eq!(hop2.as_slice(), hop2_bit.as_slice());

    // Deferred expressions are inert until evaluated, and chains collapse:
    // select(two-hop reachability) equals the Boolean product itself.
    let reachable = |v: f32| v != 0.0;
    let chained = Op::mxv(&bit, &hop1)
        .semiring(Semiring::Boolean)
        .desc(Descriptor::with_transpose())
        .select(&reachable)
        .run(&ctx);
    assert_eq!(chained.as_slice(), hop2_bit.as_slice());
}

#[test]
fn storage_backend_choice_changes_bytes_not_results() {
    let adj = corpus::named_matrix("ash292").unwrap();
    let bit = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
    let float = Matrix::from_csr(&adj, Backend::FloatCsr);
    assert!(
        bit.storage_bytes() < float.storage_bytes(),
        "B2SR-8 must compress ash292"
    );
    assert_eq!(
        algorithms::bfs(&bit, 0).levels,
        algorithms::bfs(&float, 0).levels
    );
}
