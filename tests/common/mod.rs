//! Shared strategies and assertions for the repo-level parity suites
//! (`backend_parity.rs`, `simd_parity.rs`): the structured-graph generator
//! strategies and the backend lists every differential harness iterates.
//!
//! Each integration-test binary compiles its own copy and uses a subset.
#![allow(dead_code)]

use proptest::prelude::*;

use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

/// The backends whose results must be indistinguishable.
pub fn parity_backends() -> Vec<Backend> {
    vec![
        Backend::Bit(TileSize::S4),
        Backend::Bit(TileSize::S8),
        Backend::Bit(TileSize::S16),
        Backend::FloatCsr,
        Backend::Auto,
    ]
}

/// The backends the ISSUE-2 direction engine must keep exact: every bit
/// tile size named by the acceptance bar plus the float baseline.
pub fn direction_backends() -> Vec<Backend> {
    vec![
        Backend::Bit(TileSize::S4),
        Backend::Bit(TileSize::S8),
        Backend::Bit(TileSize::S16),
        Backend::FloatCsr,
    ]
}

/// The backends with a vector (SWAR) kernel path: every bit tile size the
/// default lane mask enables, plus `Auto` (which resolves to one of them or
/// to CSR — either way the scalar/vector choice must be invisible).
pub fn simd_backends() -> Vec<Backend> {
    vec![
        Backend::Bit(TileSize::S4),
        Backend::Bit(TileSize::S8),
        Backend::Bit(TileSize::S16),
        Backend::Auto,
    ]
}

/// Strategy: a random structured graph from one of the generator families
/// (dot, diagonal, block, stripe, road), sized to keep the suite fast.
pub fn graph_strategy() -> impl Strategy<Value = Csr> {
    (0usize..5, 1u64..1_000).prop_map(|(family, seed)| match family {
        0 => generators::erdos_renyi(60 + (seed % 60) as usize, 0.04, seed % 2 == 0, seed),
        1 => generators::banded(
            80 + (seed % 80) as usize,
            1 + (seed % 4) as usize,
            0.7,
            seed,
        ),
        2 => generators::block_community(3 + (seed % 4) as usize, 24, 0.4, 1e-3, seed),
        3 => generators::stripes(90 + (seed % 60) as usize, &[1, 17, 40], 0.8, seed),
        _ => {
            let side = 7 + (seed % 6) as usize;
            generators::grid2d(side, side + 1)
        }
    })
}

/// Strategy: graphs large enough that the shard planner actually partitions
/// them (≥ `threads × SHARD_ALIGN` rows) — the small `graph_strategy`
/// corpus stays on single-shard plans by design.
pub fn shardable_graph_strategy() -> impl Strategy<Value = Csr> {
    (0usize..3, 1u64..1_000).prop_map(|(family, seed)| match family {
        0 => generators::rmat(11, 12, 0.57, 0.19, 0.19, seed).symmetrized(),
        1 => generators::erdos_renyi(1536 + (seed % 512) as usize, 0.008, seed % 2 == 0, seed),
        _ => generators::banded(2048, 6, 0.7, seed),
    })
}

/// Assert two float slices match within tolerance (infinities must pair up).
pub fn assert_f32_slices_match(got: &[f32], want: &[f32], what: &str, backend: Backend) {
    assert_eq!(got.len(), want.len());
    for (v, (g, w)) in got.iter().zip(want).enumerate() {
        let both_inf = g.is_infinite() && w.is_infinite();
        assert!(
            both_inf || (g - w).abs() < 1e-4,
            "{what} / {backend:?}: vertex {v}: {g} vs {w}"
        );
    }
}
