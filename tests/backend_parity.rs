//! Backend-parity property suite: every algorithm must produce identical
//! results on `Bit(S4)`, `Bit(S8)`, `Bit(S16)`, `FloatCsr` and `Auto` for
//! random graphs drawn from the `datagen` generators — the acceptance bar of
//! the `GrbBackend` redesign.
//!
//! Unlike `property_based.rs` (which drives the kernels on uniform random
//! edge lists), this suite samples *structured* graphs — every generator
//! family the paper's corpus covers — so the automatic format selection is
//! exercised across patterns that resolve to different backends.

mod common;

use proptest::prelude::*;

use bit_graphblas::algorithms::{
    betweenness_centrality_dir, bfs_multi_dir, reference, sssp_multi_dir,
};
use bit_graphblas::core::grb::scatter_penalty;
use bit_graphblas::datagen::generators;
use bit_graphblas::prelude::*;

use common::{
    assert_f32_slices_match, direction_backends, graph_strategy, parity_backends,
    shardable_graph_strategy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BFS levels match the queue-based reference on every backend.
    #[test]
    fn bfs_parity(adj in graph_strategy(), src in 0usize..1000) {
        let src = src % adj.nrows();
        let expected = reference::bfs_levels(&adj, src);
        for backend in parity_backends() {
            let m = Matrix::from_csr(&adj, backend);
            prop_assert_eq!(&bfs(&m, src).levels, &expected, "{:?}", backend);
        }
    }

    /// SSSP distances match Bellman-Ford on every backend.
    #[test]
    fn sssp_parity(adj in graph_strategy(), src in 0usize..1000) {
        let src = src % adj.nrows();
        let expected = reference::sssp_distances(&adj, src);
        for backend in parity_backends() {
            let m = Matrix::from_csr(&adj, backend);
            assert_f32_slices_match(&sssp(&m, src).distances, &expected, "sssp", backend);
        }
    }

    /// PageRank ranks agree with the float baseline on every backend.
    #[test]
    fn pagerank_parity(adj in graph_strategy()) {
        let config = PageRankConfig { max_iterations: 15, ..Default::default() };
        let baseline = pagerank(&Matrix::from_csr(&adj, Backend::FloatCsr), &config);
        for backend in parity_backends() {
            let got = pagerank(&Matrix::from_csr(&adj, backend), &config);
            prop_assert_eq!(got.iterations, baseline.iterations, "{:?}", backend);
            assert_f32_slices_match(&got.ranks, &baseline.ranks, "pagerank", backend);
        }
    }

    /// Connected-component labels match union-find on every backend.
    #[test]
    fn cc_parity(adj in graph_strategy()) {
        let expected = reference::cc_labels(&adj);
        for backend in parity_backends() {
            let m = Matrix::from_csr(&adj, backend);
            let got = connected_components(&m);
            prop_assert_eq!(&got.labels, &expected, "{:?}", backend);
        }
    }

    /// Triangle counts match the wedge-checking reference on every backend.
    /// (TC takes lower triangles, so Auto re-decides on `L` and `Lᵀ` and may
    /// even mix backends — the cross-backend fallback must stay exact.)
    #[test]
    fn tc_parity(adj in graph_strategy()) {
        let sym = adj.symmetrized().without_diagonal();
        let expected = reference::triangle_count(&sym);
        for backend in parity_backends() {
            let m = Matrix::from_csr(&sym, backend);
            prop_assert_eq!(triangle_count(&m), expected, "{:?}", backend);
        }
    }

    /// BFS levels are identical whichever traversal direction is forced —
    /// push, pull and the per-iteration Auto switch — on every backend the
    /// direction engine supports.
    #[test]
    fn bfs_direction_parity(adj in graph_strategy(), src in 0usize..1000) {
        let src = src % adj.nrows();
        let expected = reference::bfs_levels(&adj, src);
        for backend in direction_backends() {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let got = bfs_dir(&m, src, dir);
                prop_assert_eq!(&got.levels, &expected, "{:?} {:?}", backend, dir);
            }
        }
    }

    /// SSSP distances are bit-identical across directions (min is exact
    /// under reordering) and match Bellman-Ford.
    #[test]
    fn sssp_direction_parity(adj in graph_strategy(), src in 0usize..1000) {
        let src = src % adj.nrows();
        let expected = reference::sssp_distances(&adj, src);
        for backend in direction_backends() {
            let m = Matrix::from_csr(&adj, backend);
            let pull = sssp_dir(&m, src, Direction::Pull);
            for dir in [Direction::Push, Direction::Auto] {
                let got = sssp_dir(&m, src, dir);
                prop_assert_eq!(&got.distances, &pull.distances, "{:?} {:?}", backend, dir);
            }
            assert_f32_slices_match(&pull.distances, &expected, "sssp", backend);
        }
    }

    /// PR-3 fusion parity: a representative expression chain — product,
    /// affine stage, ewise link, accumulator, with and without a mask —
    /// produces identical results whether the planner fuses it or executes
    /// node-at-a-time, on every direction and every acceptance backend.
    #[test]
    fn fused_pipeline_equals_node_at_a_time(adj in graph_strategy(), src in 0usize..1000) {
        let n = adj.nrows();
        let src = src % n;
        let ctx = Context::default();
        let sparse = Vector::indicator(n, &[src]);
        let dense = Vector::from_vec((0..n).map(|i| (i % 5) as f32 * 0.5).collect());
        let operand = Vector::from_vec((0..n).map(|i| (i % 7) as f32).collect());
        let base = Vector::from_vec((0..n).map(|i| (i % 3) as f32).collect());
        let mask = Mask::new((0..n).map(|i| i % 4 != 1).collect());
        for backend in direction_backends() {
            let m = Matrix::from_csr(&adj, backend);
            for (x, semiring) in [(&sparse, Semiring::Boolean), (&dense, Semiring::Arithmetic)] {
                for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                    for masked in [false, true] {
                        let build = |fusion: Fusion| {
                            let mut op = Op::vxm(x, &m)
                                .semiring(semiring)
                                .direction(dir)
                                .affine(2.0, 1.0)
                                .then_ewise(BinaryOp::Plus, &operand)
                                .accum(BinaryOp::Max, &base)
                                .fusion(fusion);
                            if masked {
                                op = op.mask(&mask);
                            }
                            op.run(&ctx)
                        };
                        let fused = build(Fusion::Fused);
                        let unfused = build(Fusion::NodeAtATime);
                        assert_f32_slices_match(
                            fused.as_slice(),
                            unfused.as_slice(),
                            "fused pipeline",
                            backend,
                        );
                    }
                }
            }
            // The monoid-accumulator shape that folds into the sweep.
            let mut dist = Vector::identity(n, Semiring::MinPlus(1.0));
            dist.set(src, 0.0);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let relax = |fusion: Fusion| {
                    Op::vxm(&dist, &m)
                        .semiring(Semiring::MinPlus(1.0))
                        .direction(dir)
                        .accum(BinaryOp::Min, &dist)
                        .fusion(fusion)
                        .run(&ctx)
                };
                prop_assert_eq!(
                    relax(Fusion::Fused),
                    relax(Fusion::NodeAtATime),
                    "min-accum {:?} {:?}",
                    backend,
                    dir
                );
            }
        }
    }

    /// Batched multi-source BFS parity (PR 4): column `j` of `bfs_multi`
    /// equals `bfs_dir` from source `j`, on every acceptance backend
    /// (including `Auto`) in push, pull and auto — the contract of the
    /// frontier-matrix engine.
    #[test]
    fn bfs_multi_column_equals_single_source(adj in graph_strategy(), seed in 0usize..1000) {
        let n = adj.nrows();
        // Three sources spread from the seed, duplicates allowed.
        let sources = [seed % n, (seed * 7 + 13) % n, (seed * 31 + 5) % n];
        let mut backends = direction_backends();
        backends.push(Backend::Auto);
        for backend in backends {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let batched = bfs_multi_dir(&m, &sources, dir);
                for (l, &s) in sources.iter().enumerate() {
                    let single = bfs_dir(&m, s, dir);
                    for v in 0..n {
                        prop_assert_eq!(
                            batched.level(v, l),
                            single.levels[v],
                            "{:?} {:?} lane {} vertex {}",
                            backend, dir, l, v
                        );
                    }
                }
            }
        }
    }

    /// Batched multi-source SSSP parity: every lane equals the
    /// single-source distances bit-for-bit across backends and directions.
    #[test]
    fn sssp_multi_column_equals_single_source(adj in graph_strategy(), seed in 0usize..1000) {
        let n = adj.nrows();
        let sources = [seed % n, (seed * 11 + 3) % n];
        for backend in direction_backends() {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let batched = sssp_multi_dir(&m, &sources, dir);
                for (l, &s) in sources.iter().enumerate() {
                    let single = sssp_dir(&m, s, dir);
                    for v in 0..n {
                        prop_assert_eq!(
                            batched.distance(v, l),
                            single.distances[v],
                            "{:?} {:?} lane {} vertex {}",
                            backend, dir, l, v
                        );
                    }
                }
            }
        }
    }

    /// Batched betweenness centrality matches the two-phase Brandes
    /// reference on every acceptance backend in push, pull and auto.
    #[test]
    fn bc_matches_reference_across_backends_and_directions(adj in graph_strategy(), seed in 0usize..1000) {
        let n = adj.nrows();
        let sources: Vec<usize> = (0..4).map(|i| (seed * 17 + i * 29) % n).collect();
        let expected = reference::betweenness(&adj, &sources);
        let mut backends = direction_backends();
        backends.push(Backend::Auto);
        for backend in backends {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let got = betweenness_centrality_dir(&m, &sources, dir);
                for (v, (g, w)) in got.centrality.iter().zip(&expected).enumerate() {
                    let tol = 1e-3 + 1e-3 * w.abs();
                    prop_assert!(
                        (g - w).abs() < tol,
                        "{:?} {:?} vertex {}: {} vs {}",
                        backend, dir, v, g, w
                    );
                }
            }
        }
    }

    /// Whole-algorithm fusion parity: fused PageRank and SSSP equal their
    /// node-at-a-time executions on every acceptance backend.
    #[test]
    fn algorithm_fusion_parity(adj in graph_strategy(), src in 0usize..1000) {
        let src = src % adj.nrows();
        let fused_cfg = PageRankConfig { max_iterations: 12, ..Default::default() };
        let unfused_cfg = PageRankConfig { fusion: Fusion::NodeAtATime, ..fused_cfg };
        for backend in direction_backends() {
            let m = Matrix::from_csr(&adj, backend);
            let pr_fused = pagerank(&m, &fused_cfg);
            let pr_unfused = pagerank(&m, &unfused_cfg);
            prop_assert_eq!(pr_fused.iterations, pr_unfused.iterations, "{:?}", backend);
            for (v, (a, b)) in pr_fused.ranks.iter().zip(&pr_unfused.ranks).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-6,
                    "pagerank {:?}: vertex {}: {} vs {}",
                    backend, v, a, b
                );
            }
            let ss_fused = sssp_with(&m, src, Direction::Auto, Fusion::Fused);
            let ss_unfused = sssp_with(&m, src, Direction::Auto, Fusion::NodeAtATime);
            prop_assert_eq!(
                &ss_fused.distances,
                &ss_unfused.distances,
                "sssp {:?}",
                backend
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded parallel push determinism (PR 5)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PR-5 acceptance: on every bit tile size and the float baseline,
    /// forced-push BFS and SSSP produce **bit-identical** outputs whether
    /// the sharded scatter executes on 1, 2, 4 or 8 threads — including
    /// SSSP's min-plus float semiring, where the fixed-segment-order merge
    /// is what pins the fold grouping — and push ≡ pull ≡ auto parity
    /// holds throughout.
    #[test]
    fn sharded_push_is_bit_identical_across_thread_counts(
        adj in shardable_graph_strategy(),
        src in 0usize..1_000,
    ) {
        let src = src % adj.nrows();
        for backend in direction_backends() {
            // Build with an 8-thread budget so the plan is actually sharded.
            let ctx = Context::with_threads(8);
            let m = Matrix::from_csr_ctx(&adj, backend, &ctx);

            let mut ref_levels: Option<Vec<i64>> = None;
            let mut ref_dist_bits: Option<Vec<u32>> = None;
            for threads in [1usize, 2, 4, 8] {
                m.context().set_threads(threads);
                let levels = bfs_dir(&m, src, Direction::Push).levels;
                let dist = sssp_dir(&m, src, Direction::Push).distances;
                let dist_bits: Vec<u32> = dist.iter().map(|v| v.to_bits()).collect();
                match (&ref_levels, &ref_dist_bits) {
                    (None, _) => {
                        ref_levels = Some(levels);
                        ref_dist_bits = Some(dist_bits);
                    }
                    (Some(rl), Some(rd)) => {
                        prop_assert_eq!(&levels, rl, "{:?} BFS diverged at {} threads", backend, threads);
                        prop_assert_eq!(&dist_bits, rd, "{:?} SSSP diverged at {} threads", backend, threads);
                    }
                    _ => unreachable!(),
                }
            }

            // Push ≡ pull ≡ auto on the same (sharded) matrix.
            m.context().set_threads(8);
            let pull = bfs_dir(&m, src, Direction::Pull).levels;
            let auto = bfs_dir(&m, src, Direction::Auto).levels;
            prop_assert_eq!(&pull, ref_levels.as_ref().unwrap(), "{:?} push≠pull", backend);
            prop_assert_eq!(&auto, ref_levels.as_ref().unwrap(), "{:?} auto≠push", backend);
        }
    }

    /// The arithmetic semiring's float `+` is where merge grouping matters
    /// most: a fat forced-push product must still be bit-identical across
    /// thread counts (the grouping is pinned by the plan, not the threads).
    #[test]
    fn sharded_arithmetic_push_is_bit_identical(adj in shardable_graph_strategy(), seed in 1u64..1_000) {
        let n = adj.nrows();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let ctx = Context::with_threads(8);
            let m = Matrix::from_csr_ctx(&adj, backend, &ctx);
            // A fat, irregular frontier with varied float values.
            let x = Vector::from_vec(
                (0..n)
                    .map(|i| {
                        let h = (i as u64).wrapping_mul(seed) % 7;
                        if h < 3 { h as f32 * 0.321 + 0.1 } else { 0.0 }
                    })
                    .collect(),
            );
            let mut reference: Option<Vec<u32>> = None;
            for threads in [1usize, 2, 4, 8] {
                ctx.set_threads(threads);
                let y = Op::vxm(&x, &m)
                    .semiring(Semiring::Arithmetic)
                    .direction(Direction::Push)
                    .run(&ctx);
                let bits: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
                match &reference {
                    None => reference = Some(bits),
                    Some(r) => prop_assert_eq!(&bits, r, "{:?} threads={}", backend, threads),
                }
            }
        }
    }
}

/// The sharded path must actually *run* on a shard-worthy push (engagement
/// is observable through the context counters), and a serial-budget context
/// must keep every scatter on the serial kernels.
#[test]
fn sharded_push_engages_and_serial_contexts_stay_serial() {
    let adj = generators::rmat(11, 12, 0.57, 0.19, 0.19, 17).symmetrized();
    let n = adj.nrows();
    // A fat frontier spread across the whole row range spans many shards.
    let positions: Vec<usize> = (0..n).step_by(3).collect();
    let x = Vector::indicator(n, &positions);

    let parallel_ctx = Context::with_threads(8);
    let m = Matrix::from_csr_ctx(&adj, Backend::Bit(TileSize::S8), &parallel_ctx);
    let plan = m
        .state()
        .shard_plan(false)
        .expect("an 8-thread context must shard a 2048-row matrix");
    assert!(plan.n_shards() > 1, "plan must be partitioned: {plan:?}");
    Op::vxm(&x, &m)
        .semiring(Semiring::Boolean)
        .direction(Direction::Push)
        .run(&parallel_ctx);
    let stats = parallel_ctx.stats();
    assert!(
        stats.sharded_push > 0 && stats.shard_segments > 1,
        "shard-worthy push must take the sharded path: {stats:?}"
    );

    let serial_ctx = Context::with_threads(1);
    let ms = Matrix::from_csr_ctx(&adj, Backend::Bit(TileSize::S8), &serial_ctx);
    assert_eq!(
        ms.state().shard_plan(false).map(|p| p.n_shards()),
        Some(1),
        "a serial-budget context must build single-shard plans"
    );
    Op::vxm(&x, &ms)
        .semiring(Semiring::Boolean)
        .direction(Direction::Push)
        .run(&serial_ctx);
    assert_eq!(
        serial_ctx.stats().sharded_push,
        0,
        "serial plans must never fan out"
    );
}

/// Edge case: an all-identity operand (empty frontier) produces the
/// identity output in every direction, including a source vertex with no
/// out-edges terminating BFS after one iteration.
#[test]
fn empty_frontier_is_identity_in_every_direction() {
    let adj = generators::erdos_renyi(96, 0.04, true, 42);
    let ctx = Context::default();
    let zero = Vector::zeros(96);
    let inf = Vector::identity(96, Semiring::MinPlus(1.0));
    for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
        let m = Matrix::from_csr(&adj, backend);
        for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
            let bool_out = Op::vxm(&zero, &m)
                .semiring(Semiring::Boolean)
                .direction(dir)
                .run(&ctx);
            assert_eq!(bool_out.nnz(), 0, "{backend:?} {dir:?}");
            let minplus_out = Op::vxm(&inf, &m)
                .semiring(Semiring::MinPlus(1.0))
                .direction(dir)
                .run(&ctx);
            assert!(
                minplus_out.as_slice().iter().all(|v| v.is_infinite()),
                "{backend:?} {dir:?}"
            );
        }
    }

    // BFS from an out-degree-0 vertex: one empty iteration, any direction.
    let mut coo = Coo::new(8, 8);
    coo.push_edge(1, 2).unwrap();
    let m = Matrix::from_csr(&coo.to_binary_csr(), Backend::Bit(TileSize::S4));
    for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
        let r = bfs_dir(&m, 0, dir);
        assert_eq!(r.n_reached, 1, "{dir:?}");
        assert_eq!(r.iterations, 1, "{dir:?}");
    }
}

/// Edge case: frontiers straddling the Beamer-style switch threshold —
/// fully dense (forces pull under Auto), exactly at, just below and just
/// above the modelled crossover — all agree with both forced directions.
#[test]
fn full_density_and_threshold_frontiers_agree() {
    let adj = generators::erdos_renyi(256, 0.03, true, 7);
    let ctx = Context::default();
    let nnz = adj.nnz();
    // The crossover frontier size of the traffic model (see
    // grb::choose_direction): f * d̄ * penalty = nnz + n.
    let threshold = ((nnz + 256) as f64
        / ((nnz as f64 / 256.0).max(1.0) * scatter_penalty(&ctx.device)))
        as usize;
    let sizes = [threshold.saturating_sub(1), threshold, threshold + 1, 256];
    for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
        let m = Matrix::from_csr(&adj, backend);
        for &k in &sizes {
            let positions: Vec<usize> = (0..k.min(256)).collect();
            let x = Vector::indicator(256, &positions);
            let pull = Op::vxm(&x, &m)
                .semiring(Semiring::Boolean)
                .direction(Direction::Pull)
                .run(&ctx);
            let push = Op::vxm(&x, &m)
                .semiring(Semiring::Boolean)
                .direction(Direction::Push)
                .run(&ctx);
            let auto = Op::vxm(&x, &m)
                .semiring(Semiring::Boolean)
                .direction(Direction::Auto)
                .run(&ctx);
            assert_eq!(push, pull, "{backend:?} frontier {k}");
            assert_eq!(auto, pull, "{backend:?} frontier {k}");
        }
    }
}

/// A whole Auto BFS on a structured graph actually *switches*: the context
/// counters must record both push iterations (sparse fringe) and pull
/// iterations (the dense hump).
#[test]
fn auto_bfs_uses_both_directions_on_a_dense_hump_graph() {
    let adj = generators::rmat(11, 16, 0.57, 0.19, 0.19, 3).symmetrized();
    let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
    let r = bfs_dir(&m, 0, Direction::Auto);
    assert!(r.n_reached > 1000, "RMAT core must be reachable");
    let stats = m.context().stats();
    assert!(
        stats.push_mxv > 0,
        "sparse fringe iterations must push: {stats:?}"
    );
    assert!(
        stats.pull_mxv > 0,
        "the dense hump iteration must pull: {stats:?}"
    );
}

/// The paper's Figure-5 story, end to end: `Backend::Auto` picks *different*
/// tile sizes for at least two corpus patterns, and keeps CSR for scatter
/// with nothing to exploit.
#[test]
fn auto_selection_differs_across_corpus_patterns() {
    let banded = Matrix::from_csr(&generators::banded(2048, 3, 0.8, 7), Backend::Auto);
    let blocks = Matrix::from_csr(
        &generators::block_community(16, 64, 0.5, 1e-5, 9),
        Backend::Auto,
    );

    let banded_ts = match banded.resolved_backend() {
        Backend::Bit(ts) => ts,
        other => panic!("banded should resolve to a bit backend, got {other:?}"),
    };
    let blocks_ts = match blocks.resolved_backend() {
        Backend::Bit(ts) => ts,
        other => panic!("block pattern should resolve to a bit backend, got {other:?}"),
    };
    assert_ne!(
        banded_ts, blocks_ts,
        "auto selection must adapt the tile size to the pattern"
    );
    assert!(
        banded_ts.dim() < blocks_ts.dim(),
        "thin bands want smaller tiles than dense blocks"
    );

    // Unstructured scatter with ~1 bit per touched tile: keep the original CSR.
    let mut coo = Coo::new(4096, 4096);
    for r in (0..4096usize).step_by(3) {
        coo.push_edge(r, (r * 7 + 13) % 4096).unwrap();
    }
    let scatter = Matrix::from_csr(&coo.to_binary_csr(), Backend::Auto);
    assert_eq!(scatter.resolved_backend(), Backend::FloatCsr);
}
